(** Runtime protocol monitors.

    The [verify] library proves the protocol blocks correct in isolation;
    these monitors watch the same obligations on a {e live} system, every
    channel every cycle, so that an injected (or real) fault is caught at
    the first wire it perturbs:

    - {b token conservation}: per channel, what the producer believes it
      handed over, minus what the consumer believes it received, equals the
      tokens resting in the relay chain — no loss, no duplication;
    - {b in-order delivery}: the value delivered at the consumer side is
      the oldest value in flight (FIFO discipline of the chain);
    - {b stop-implies-hold}: a valid token the consumer refused is
      presented again, unchanged, the next cycle.

    The monitor keeps a model FIFO per channel (the "ledger") fed only from
    the snapshot's boundary probes, so it is an independent oracle: it
    embeds no knowledge of relay-station internals beyond occupancy.

    A signature-based {!Watchdog} detects deadlock: the skeleton of a
    closed system is finite-state, so once the injection window has passed
    a repeated signature proves the regime periodic; a period with no
    firing at all is a wedged system — forever. *)

type violation_kind =
  | Token_lost  (** the ledger holds more tokens than the channel does *)
  | Token_duplicated
      (** a delivery the ledger cannot account for (or conjured storage) *)
  | Token_mismatched
      (** delivered value differs from the oldest in flight and is not in
          flight at all — in-flight corruption *)
  | Token_reordered
      (** delivered value differs from the oldest in flight but a later
          in-flight token carries it — out-of-order delivery (e.g. a
          retransmission scheme gone wrong) *)
  | Hold_violated  (** a refused valid token was not held *)

type violation = {
  v_cycle : int;
  v_edge : Topology.Network.edge_id;
  v_kind : violation_kind;
  v_detail : string;
}

val violation_kind_to_string : violation_kind -> string
val pp_violation : Topology.Network.t -> Format.formatter -> violation -> unit

type t

val create : Topology.Network.t -> t

val observe : t -> Skeleton.Engine.snapshot -> unit
(** Feed one cycle.  Snapshots must be consecutive (the hold check and the
    ledger are stateful). *)

val observe_probes :
  t -> cycle:int -> Skeleton.Engine.probe array -> unit
(** Feed one cycle from a dense probe array indexed by edge id (what
    {!Skeleton.Packed.probe_next} captures) — the same obligations and
    violation order as {!observe}, without a full snapshot. *)

val observe_chan : t -> cycle:int -> edge:Topology.Network.edge_id -> Skeleton.Engine.probe -> unit
(** Feed one cycle of ONE channel.  Per-channel state is independent —
    each edge's obligations are a pure function of its own probe history
    — so a caller may feed different edges at different paces, provided
    each edge sees consecutive cycles.  Violations are ordered by feed
    order, so for the canonical [(cycle, edge)] lexicographic order feed
    ascending edges within each cycle.  The incremental fault classifier
    uses this to reconstruct a channel's monitor lazily from recorded
    probes when the channel first diverges from the fault-free run. *)

val violations : t -> violation list
(** All violations so far, oldest first. *)

val attach : t -> Skeleton.Engine.t -> unit
(** Install [observe] as the engine's step-loop monitor, so plain
    {!Skeleton.Engine.run} is monitored. *)

(** Deadlock / livelock watchdog over skeleton signatures. *)
module Watchdog : sig
  type verdict =
    | Watching  (** no repeated signature yet *)
    | Periodic of { transient : int; period : int; live : bool }
        (** a signature repeated: the regime is periodic; [live] iff at
            least one node fired inside the period *)

  type w

  val create : ?quiesce_after:int -> unit -> w
  (** Ignore cycles before [quiesce_after] (default 0) — signatures are
      only comparable once fault hooks have gone quiet. *)

  val note : w -> cycle:int -> signature:string -> progress:bool -> unit
  val verdict : w -> verdict

  val deadlocked : w -> bool
  (** [true] iff the verdict is a non-live periodic regime. *)
end
