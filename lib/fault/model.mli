(** Typed, seeded fault model for the protocol skeleton.

    The paper's point is that LIP correctness lives in the implementation
    details of stop/void handling; this module makes those details
    attackable.  A fault is a deterministic, cycle-addressed perturbation
    of one wire or register of a running LID: the valid bit of a forward
    channel flips, a payload is corrupted, a stop signal is conjured,
    dropped or stuck, or a relay-station register takes a single-event
    upset.  Faults compile to {!Skeleton.Engine.fault_hooks}; everything is
    reproducible from integer seeds. *)

type kind =
  | Valid_flip  (** flip the valid bit of a forward wire (void <-> valid) *)
  | Data_corrupt  (** XOR the payload of a valid forward token *)
  | Stop_spurious  (** force a stop wire high (typically for one cycle) *)
  | Stop_drop  (** force a stop wire low — a stop in flight is lost *)
  | Stop_stuck  (** hold a stop wire high over a multi-cycle window *)
  | Station_upset  (** single-event upset of a relay-station data register *)
  | Flit_corrupt
      (** XOR a flit's payload on a retransmitting station's internal hop;
          the damage is detectable (checksum model), so the receiver NACKs *)
  | Flit_corrupt_silent
      (** same, but the damage defeats the checksum — the receiver
          delivers the corrupted payload as if intact *)
  | Flit_drop  (** a flit vanishes on the internal hop *)
  | Flit_dup  (** a flit is delivered and a copy stays in flight *)

val all_kinds : kind list
val kind_to_string : kind -> string
val kind_of_string : string -> kind option
val pp_kind : Format.formatter -> kind -> unit

type site =
  | Forward of { edge : Topology.Network.edge_id; seg : int }
      (** forward token wire: segment 0 leaves the producer, segment
          [j > 0] leaves relay station [j-1] of the chain *)
  | Backward of { edge : Topology.Network.edge_id; boundary : int }
      (** stop wire: boundary 0 reaches the producer, boundary [b > 0]
          reaches relay station [b-1] *)
  | Register of { edge : Topology.Network.edge_id; station : int }
      (** a relay station's data register *)
  | Link of { edge : Topology.Network.edge_id; station : int }
      (** the internal data hop of retransmitting station [station] — only
          retransmitting stations are addressable on this plane *)

type t = {
  kind : kind;
  site : site;
  cycle : int;  (** first faulty cycle *)
  duration : int;  (** number of consecutive faulty cycles, [>= 1] *)
  param : int;
      (** payload of conjured tokens ([Valid_flip] on void, [Station_upset]
          on an empty register); XOR mask for [Data_corrupt] and the
          [Flit_corrupt] variants *)
}

val last_cycle : t -> int
(** Last cycle on which the fault is active; after it the system is
    autonomous again (relevant for the deadlock watchdog). *)

val sites : Topology.Network.t -> kind -> site list
(** Every addressable site of the plane [kind] acts on, in deterministic
    order: all (edge, segment) pairs for token faults, all (edge, boundary)
    pairs for stop faults, all (edge, station) pairs for register upsets. *)

val hooks : t list -> Skeleton.Engine.fault_hooks
(** Compile a fault list into engine hooks.  Faults at the same site and
    cycle compose left to right. *)

val pp : Topology.Network.t -> Format.formatter -> t -> unit
(** Render with node names, e.g.
    [stop-drop at A.0->C.0 boundary 1, cycle 12]. *)
