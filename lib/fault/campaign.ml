module Net = Topology.Network

type config = {
  seed : int;
  kinds : Model.kind list;
  cycles : int;
  flavour : Lid.Protocol.flavour;
  max_sites_per_kind : int;
  injections_per_site : int;
}

let default_config =
  {
    seed = 1;
    kinds = Model.all_kinds;
    cycles = 256;
    flavour = Lid.Protocol.Optimized;
    max_sites_per_kind = 0;
    injections_per_site = 1;
  }

type result = { config : config; net : Net.t; reports : Classify.report list }

(* Deterministic Fisher-Yates; used to thin a site plane reproducibly. *)
let sample rng n xs =
  if n <= 0 || List.length xs <= n then xs
  else begin
    let a = Array.of_list xs in
    for i = Array.length a - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    done;
    Array.to_list (Array.sub a 0 n)
  end

let faults_of_config config net =
  let rng = Random.State.make [| config.seed; 0x11d |] in
  List.concat_map
    (fun kind ->
      let sites =
        sample rng config.max_sites_per_kind (Model.sites net kind)
      in
      List.concat_map
        (fun site ->
          List.init config.injections_per_site (fun _ ->
              (* Inject inside the first half of the horizon, past the
                 start-up cycles, so there is room for the symptom to
                 propagate and for the watchdog to settle. *)
              let window = max 1 ((config.cycles / 2) - 4) in
              let cycle = 4 + Random.State.int rng window in
              let duration =
                match kind with
                | Model.Stop_stuck -> 6 + Random.State.int rng 8
                | _ -> 1
              in
              let param =
                match kind with
                | Model.Data_corrupt | Model.Flit_corrupt
                | Model.Flit_corrupt_silent ->
                    1 + Random.State.int rng 254
                | _ -> 900_000 + Random.State.int rng 1000
              in
              { Model.kind; site; cycle; duration; param }))
        sites)
    config.kinds

let run ?on_report config net =
  let faults = faults_of_config config net in
  let baseline =
    Classify.baseline ~cycles:config.cycles ~flavour:config.flavour net
  in
  let reports =
    List.map
      (fun fault ->
        let report = Classify.classify baseline fault in
        (match on_report with Some f -> f report | None -> ());
        report)
      faults
  in
  { config; net; reports }

(* ------------------------------------------------------------------ *)
(* Lane-parallel driving: one bit-sliced run filters a whole batch of
   faults down to the ones that actually perturb the system.           *)

module Lanes = Skeleton.Packed_lanes

let spec_of_fault (f : Model.t) =
  let site =
    match f.site with
    | Model.Forward { edge; seg } -> Lanes.Forward { edge; seg }
    | Model.Backward { edge; boundary } -> Lanes.Backward { edge; boundary }
    | Model.Register { edge; station } -> Lanes.Register { edge; station }
    | Model.Link { edge; station } -> Lanes.Link { edge; station }
  in
  let eff =
    (* the boolean shadow of [Model.hooks]: Valid_flip toggles the wire
       unconditionally (XOR); Stop_spurious/Stop_stuck force the stop
       high (OR), Stop_drop forces it low (AND-NOT); Data_corrupt has no
       boolean dynamics at all, so its lane only watches the wire;
       link-plane faults are handed to the station's own FSM per lane,
       with the same param-to-mask defaulting as [Model.hooks] *)
    let mask = if f.param = 0 then 1 else f.param in
    match f.kind with
    | Model.Valid_flip -> Lanes.Flip_valid
    | Model.Data_corrupt -> Lanes.Watch
    | Model.Stop_spurious | Model.Stop_stuck -> Lanes.Force_stop
    | Model.Stop_drop -> Lanes.Drop_stop
    | Model.Station_upset -> Lanes.Upset
    | Model.Flit_corrupt -> Lanes.Link_fault (Lid.Relay_station.Link_corrupt mask)
    | Model.Flit_corrupt_silent ->
        Lanes.Link_fault (Lid.Relay_station.Link_corrupt_silent mask)
    | Model.Flit_drop -> Lanes.Link_fault Lid.Relay_station.Link_drop
    | Model.Flit_dup -> Lanes.Link_fault Lid.Relay_station.Link_dup
  in
  { Lanes.eff; site; from_cycle = f.cycle; duration = f.duration }

let lane_batches ~lanes faults =
  let per_batch = lanes - 1 in
  if per_batch < 1 then invalid_arg "Campaign.lane_batches: lanes must be >= 2";
  let rec chunk acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | f :: rest ->
        if n = per_batch then chunk (List.rev cur :: acc) [ f ] 1 rest
        else chunk acc (f :: cur) (n + 1) rest
  in
  chunk [] [] 0 faults

(* May a clean (never-divergent) lane answer for its fault from the
   fault-free replay?  Register upsets rewrite occupancy and must always
   be simulated (in practice their lanes always diverge anyway); a
   payload corruption additionally needs its wire to have stayed void
   through the window — only then is the corruption a literal no-op.
   Link-plane faults only act on a flit completing its hop: a detectable
   corruption, drop or duplicate that hits one perturbs the lane's
   go-back-N signature (or its recovery counter, which the lane engine
   compares too), so a clean lane means no flit was hit; the silent
   corruption is the payload case again and needs its untouched flag. *)
let filterable (f : Model.t) (lr : Lanes.lane_report) =
  (not lr.lr_diverged)
  &&
  match f.kind with
  | Model.Station_upset -> false
  | Model.Data_corrupt | Model.Flit_corrupt_silent -> not lr.lr_touched
  | Model.Flit_corrupt | Model.Flit_drop | Model.Flit_dup -> true
  | Model.Valid_flip | Model.Stop_spurious | Model.Stop_drop | Model.Stop_stuck
    ->
      true

let classify_lane_batch ?classify baseline replay config net ~lanes batch =
  let classify =
    match classify with
    | Some f -> f
    | None -> Classify.classify_fast baseline
  in
  match (replay, batch) with
  | None, _ ->
      (* no usable fault-free replay: simulate every fault *)
      List.map classify batch
  | _, [] -> []
  | Some rp, _ ->
      let lanes_t =
        Lanes.create ~flavour:config.flavour ~lanes net
          (List.map spec_of_fault batch)
      in
      Lanes.run lanes_t ~cycles:config.cycles;
      let lane_reports = Lanes.lane_reports lanes_t in
      List.mapi
        (fun i fault ->
          if filterable fault lane_reports.(i) then
            Classify.masked_report baseline rp fault
          else classify fault)
        batch

let run_lanes ?(lanes = Lanes.max_lanes) ?on_report config net =
  if lanes <= 1 then run ?on_report config net
  else begin
    let lanes = min lanes Lanes.max_lanes in
    let faults = faults_of_config config net in
    let baseline =
      Classify.baseline ~cycles:config.cycles ~flavour:config.flavour net
    in
    let replay = Classify.replay baseline in
    let reports =
      List.concat_map
        (fun batch ->
          let rs = classify_lane_batch baseline replay config net ~lanes batch in
          (match on_report with Some f -> List.iter f rs | None -> ());
          rs)
        (lane_batches ~lanes faults)
    in
    { config; net; reports }
  end

let tally result =
  List.map
    (fun kind ->
      let mine =
        List.filter (fun (r : Classify.report) -> r.fault.kind = kind)
          result.reports
      in
      ( kind,
        List.map
          (fun outcome ->
            ( outcome,
              List.length
                (List.filter
                   (fun (r : Classify.report) -> r.outcome = outcome)
                   mine) ))
          Classify.all_outcomes ))
    result.config.kinds

let worst result =
  List.fold_left
    (fun best (r : Classify.report) ->
      match best with
      | Some (b : Classify.report)
        when Classify.rank b.outcome >= Classify.rank r.outcome ->
          best
      | _ -> Some r)
    None result.reports

let pp_summary fmt result =
  let t = tally result in
  let col = 18 in
  Format.fprintf fmt "%-16s" "kind";
  List.iter
    (fun o -> Format.fprintf fmt "%*s" col (Classify.outcome_to_string o))
    Classify.all_outcomes;
  Format.fprintf fmt "%*s@." col "total";
  List.iter
    (fun (kind, counts) ->
      Format.fprintf fmt "%-16s" (Model.kind_to_string kind);
      List.iter (fun (_, n) -> Format.fprintf fmt "%*d" col n) counts;
      Format.fprintf fmt "%*d@." col
        (List.fold_left (fun acc (_, n) -> acc + n) 0 counts))
    t;
  Format.fprintf fmt "%-16s" "total";
  List.iter
    (fun o ->
      let n =
        List.fold_left
          (fun acc (_, counts) -> acc + List.assoc o counts)
          0 t
      in
      Format.fprintf fmt "%*d" col n)
    Classify.all_outcomes;
  Format.fprintf fmt "%*d@." col (List.length result.reports)

(* --- JSON ----------------------------------------------------------- *)
(* Hand-rolled, like [Lint.Checks.to_json]: fixed, tiny vocabulary — a
   json library dependency would be all cost.  Strings go through
   [Lidjson.quote]: fault descriptions embed node names, which may carry
   quotes, newlines or UTF-8. *)

let json ~jobs ~lanes_used result =
  let b = Buffer.create 2048 in
  let t = tally result in
  Printf.bprintf b
    "{\n  \"seed\": %d,\n  \"cycles\": %d,\n  \"flavour\": %s,\n\
    \  \"injections\": %d,\n  \"jobs\": %d,\n  \"lanes_used\": %d,\n"
    result.config.seed result.config.cycles
    (Lidjson.quote
       (match result.config.flavour with
       | Lid.Protocol.Optimized -> "optimized"
       | Lid.Protocol.Original -> "original"))
    (List.length result.reports) jobs lanes_used;
  Buffer.add_string b "  \"tally\": [";
  List.iteri
    (fun i (kind, counts) ->
      Buffer.add_string b (if i = 0 then "\n    " else ",\n    ");
      Printf.bprintf b "{\"kind\": %s, \"outcomes\": {"
        (Lidjson.quote (Model.kind_to_string kind));
      List.iteri
        (fun j (o, n) ->
          if j > 0 then Buffer.add_string b ", ";
          Printf.bprintf b "%s: %d" (Lidjson.quote (Classify.outcome_to_string o)) n)
        counts;
      Buffer.add_string b "}}")
    t;
  Buffer.add_string b (if t = [] then "],\n" else "\n  ],\n");
  Buffer.add_string b "  \"outcomes\": {";
  List.iteri
    (fun j o ->
      let n =
        List.length
          (List.filter (fun (r : Classify.report) -> r.outcome = o) result.reports)
      in
      if j > 0 then Buffer.add_string b ", ";
      Printf.bprintf b "%s: %d" (Lidjson.quote (Classify.outcome_to_string o)) n)
    Classify.all_outcomes;
  Buffer.add_string b "},\n";
  Printf.bprintf b "  \"recoveries\": %d,\n"
    (List.fold_left
       (fun acc (r : Classify.report) -> acc + r.evidence.recoveries)
       0 result.reports);
  (match worst result with
  | Some r when r.outcome <> Classify.Masked ->
      Printf.bprintf b "  \"worst\": {\"outcome\": %s, \"fault\": %s}\n"
        (Lidjson.quote (Classify.outcome_to_string r.outcome))
        (Lidjson.quote (Format.asprintf "%a" (Model.pp result.net) r.fault))
  | _ -> Buffer.add_string b "  \"worst\": null\n");
  Buffer.add_string b "}\n";
  Buffer.contents b
