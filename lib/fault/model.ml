module Net = Topology.Network
module Token = Lid.Token

type kind =
  | Valid_flip
  | Data_corrupt
  | Stop_spurious
  | Stop_drop
  | Stop_stuck
  | Station_upset
  | Flit_corrupt
  | Flit_corrupt_silent
  | Flit_drop
  | Flit_dup

let all_kinds =
  [
    Valid_flip;
    Data_corrupt;
    Stop_spurious;
    Stop_drop;
    Stop_stuck;
    Station_upset;
    Flit_corrupt;
    Flit_corrupt_silent;
    Flit_drop;
    Flit_dup;
  ]

let kind_to_string = function
  | Valid_flip -> "valid-flip"
  | Data_corrupt -> "data-corrupt"
  | Stop_spurious -> "stop-spurious"
  | Stop_drop -> "stop-drop"
  | Stop_stuck -> "stop-stuck"
  | Station_upset -> "station-upset"
  | Flit_corrupt -> "flit-corrupt"
  | Flit_corrupt_silent -> "flit-corrupt-silent"
  | Flit_drop -> "flit-drop"
  | Flit_dup -> "flit-dup"

let kind_of_string s =
  List.find_opt (fun k -> kind_to_string k = s) all_kinds

let pp_kind fmt k = Format.pp_print_string fmt (kind_to_string k)

type site =
  | Forward of { edge : Net.edge_id; seg : int }
  | Backward of { edge : Net.edge_id; boundary : int }
  | Register of { edge : Net.edge_id; station : int }
  | Link of { edge : Net.edge_id; station : int }

type t = { kind : kind; site : site; cycle : int; duration : int; param : int }

let last_cycle f = f.cycle + f.duration - 1

let sites net kind =
  let forward_plane =
    List.concat_map
      (fun (e : Net.edge) ->
        List.init
          (List.length e.stations + 1)
          (fun seg -> Forward { edge = e.id; seg }))
      (Net.edges net)
  in
  let backward_plane =
    List.concat_map
      (fun (e : Net.edge) ->
        List.init
          (List.length e.stations + 1)
          (fun boundary -> Backward { edge = e.id; boundary }))
      (Net.edges net)
  in
  let register_plane =
    List.concat_map
      (fun (e : Net.edge) ->
        List.init (List.length e.stations) (fun station ->
            Register { edge = e.id; station }))
      (Net.edges net)
  in
  (* only retransmitting stations have an attackable internal hop *)
  let link_plane =
    List.concat_map
      (fun (e : Net.edge) ->
        List.concat
          (List.mapi
             (fun station k ->
               match k with
               | Lid.Relay_station.Retx _ -> [ Link { edge = e.id; station } ]
               | _ -> [])
             e.stations))
      (Net.edges net)
  in
  match kind with
  | Valid_flip | Data_corrupt -> forward_plane
  | Stop_spurious | Stop_drop | Stop_stuck -> backward_plane
  | Station_upset -> register_plane
  | Flit_corrupt | Flit_corrupt_silent | Flit_drop | Flit_dup -> link_plane

let active f ~cycle = cycle >= f.cycle && cycle < f.cycle + f.duration

let hooks faults =
  let fh_forward ~cycle ~edge ~seg tok =
    List.fold_left
      (fun tok f ->
        match f.site with
        | Forward { edge = e; seg = s }
          when e = edge && s = seg && active f ~cycle -> (
            match f.kind with
            | Valid_flip -> (
                match tok with
                | Token.Valid _ -> Token.void
                | Token.Void -> Token.valid f.param)
            | Data_corrupt -> (
                match tok with
                | Token.Valid v ->
                    Token.valid (v lxor if f.param = 0 then 1 else f.param)
                | Token.Void -> tok)
            | _ -> tok)
        | _ -> tok)
      tok faults
  in
  let fh_stop ~cycle ~edge ~boundary stop =
    List.fold_left
      (fun stop f ->
        match f.site with
        | Backward { edge = e; boundary = b }
          when e = edge && b = boundary && active f ~cycle -> (
            match f.kind with
            | Stop_spurious | Stop_stuck -> true
            | Stop_drop -> false
            | _ -> stop)
        | _ -> stop)
      stop faults
  in
  let fh_station ~cycle ~edge ~station st =
    List.fold_left
      (fun st f ->
        match f.site with
        | Register { edge = e; station = s }
          when e = edge && s = station && f.kind = Station_upset
               && active f ~cycle ->
            Lid.Relay_station.upset ~payload:f.param st
        | _ -> st)
      st faults
  in
  let fh_link ~cycle ~edge ~station =
    List.fold_left
      (fun acc f ->
        match f.site with
        | Link { edge = e; station = s }
          when e = edge && s = station && active f ~cycle -> (
            let mask = if f.param = 0 then 1 else f.param in
            match f.kind with
            | Flit_corrupt -> Lid.Relay_station.Link_corrupt mask
            | Flit_corrupt_silent -> Lid.Relay_station.Link_corrupt_silent mask
            | Flit_drop -> Lid.Relay_station.Link_drop
            | Flit_dup -> Lid.Relay_station.Link_dup
            | _ -> acc)
        | _ -> acc)
      Lid.Relay_station.Link_ok faults
  in
  { Skeleton.Engine.fh_forward; fh_stop; fh_station; fh_link }

let pp net fmt f =
  let edge_label eid =
    let e = Net.edge net eid in
    Format.sprintf "%s.%d->%s.%d"
      (Net.node net e.src.node).name e.src.port
      (Net.node net e.dst.node).name e.dst.port
  in
  let site =
    match f.site with
    | Forward { edge; seg } -> Format.sprintf "%s seg %d" (edge_label edge) seg
    | Backward { edge; boundary } ->
        Format.sprintf "%s boundary %d" (edge_label edge) boundary
    | Register { edge; station } ->
        Format.sprintf "%s station %d" (edge_label edge) station
    | Link { edge; station } ->
        Format.sprintf "%s link of station %d" (edge_label edge) station
  in
  Format.fprintf fmt "%s at %s, cycle %d%s" (kind_to_string f.kind) site f.cycle
    (if f.duration > 1 then Format.sprintf " (x%d)" f.duration else "")
