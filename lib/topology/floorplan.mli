(** Floorplan-driven LID synthesis.

    The paper's motivation: "the performance of future Systems-on-Chip will
    be limited by the latency of long interconnects requiring more than one
    clock cycle for the signals to propagate".  This module closes that
    loop: given functional modules placed on a die and the distance a
    signal can travel in one clock period ([reach]), it derives each
    channel's wire latency from Manhattan distance and inserts the
    corresponding relay stations:

    - a wire needing [c] clock cycles gets [c - 1] full stations (splitting
      it into [c] reach-sized segments);
    - a single-cycle wire between two shells still needs its minimum memory
      element and gets one latency-free half station;
    - channels into sinks need nothing extra.

    The result is an ordinary {!Network}, ready for analysis, equalization,
    simulation and RTL emission — the "correct-by-construction" flow of the
    LID methodology. *)

type t
type module_id = Network.node_id

val create : unit -> t

val add_shell :
  t -> ?name:string -> x:float -> y:float -> Lid.Pearl.t -> module_id

val add_source :
  t ->
  ?name:string ->
  ?start:int ->
  ?pattern:Pattern.t ->
  x:float ->
  y:float ->
  unit ->
  module_id

val add_sink :
  t -> ?name:string -> ?pattern:Pattern.t -> x:float -> y:float -> unit -> module_id

val connect : t -> src:module_id * int -> dst:module_id * int -> unit

type channel_report = {
  src_name : string;
  dst_name : string;
  distance : float;  (** Manhattan *)
  wire_cycles : int;  (** [ceil (distance / reach)], at least 1 *)
  stations : Lid.Relay_station.kind list;
  profile : Lid.Latency.profile option;
      (** the derived wire-latency profile ({!synthesize_latency} only) *)
}

type report = {
  reach : float;
  channels : channel_report list;
  full_stations : int;
  half_stations : int;
}

val synthesize : reach:float -> t -> Network.t * report
(** Raises [Invalid_argument] if [reach <= 0]. *)

val synthesize_latency : reach:float -> ?pitch:int -> t -> Network.t * report
(** The dynamic-LID rendering of the same floorplan: a [c]-cycle wire
    becomes {e one} full relay station plus a derived
    [Lid.Latency.Distance] profile carrying the remaining [c - 1] cycles
    (the skeleton's entrance gate meters the launches), instead of
    [c - 1] pipelining stations.  [pitch] (default 100) is the profile's
    distance-per-clock unit; the profile length is rescaled from the
    Manhattan distance and clamped so the derived per-launch delay is
    exactly [wire_cycles - 1] — latency-equivalent to the pipelined
    rendering by construction, and checked in lockstep against an
    explicit [table:] profile by the floorplan tests.  Throughput is the
    trade-off, not latency: the profile wire is unpipelined (one token in
    flight), so a dominant [c]-cycle wire sustains [1/c] where the [c - 1]
    stations it replaces doubled as storage and sustained full rate.
    Raises [Invalid_argument] if [reach <= 0] or [pitch <= 0]. *)

val pp_report : Format.formatter -> report -> unit
