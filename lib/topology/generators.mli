(** Ready-made topologies: the paper's figures, the representative families
    of its analysis section, and seeded random instances for property
    testing. *)

open Lid.Relay_station

val fig1 : ?r_direct:int -> ?r_to_b:int -> ?r_from_b:int -> unit -> Network.t
(** The paper's Fig. 1 "reconvergent inputs" system: a free-running source
    feeds fork shell [A]; [A] reaches join shell [C] both directly (through
    [r_direct] full relay stations, default 1) and via shell [B]
    ([r_to_b] + [r_from_b] full stations, default 1 + 1); [C] feeds a sink.
    With the defaults the relay-station imbalance is [i = 1] and the paper
    predicts throughput [4/5]. *)

val fig2 : ?stations_ab:int -> ?stations_ba:int -> unit -> Network.t
(** The paper's Fig. 2 "feedback" system: shells [A] and [B] in a loop with
    [stations_ab] (default 1) full stations on [A -> B] and [stations_ba]
    (default 1) on [B -> A].  Closed system; maximum throughput
    [S/(S+R) = 2/(2+R)]. *)

val chain :
  ?n_shells:int ->
  ?stations:kind list ->
  ?source_pattern:Pattern.t ->
  ?sink_pattern:Pattern.t ->
  unit ->
  Network.t
(** A pipeline: source -> [n_shells] identity shells -> sink, with the given
    relay chain (default [[Full]]) on every channel. *)

val tree : depth:int -> ?stations:kind list -> unit -> Network.t
(** Complete binary distribution tree of fork shells, depth [depth] >= 1:
    source at the root, [2^depth] sinks at the leaves.  The paper's simplest
    topology — throughput 1, transient bounded by the longest path. *)

val reconvergent :
  ?stations_kind:kind ->
  r_short:int ->
  r_long_head:int ->
  r_long_tail:int ->
  unit ->
  Network.t
(** Generalized Fig. 1 with configurable station counts on the short branch
    and the two segments of the long branch. *)

val ring : n_shells:int -> ?stations:kind list -> unit -> Network.t
(** [n_shells] >= 2 identity shells in a directed loop, [stations] (default
    [[Full]]) on every loop channel.  A closed system: measure shell firing
    rates rather than sink consumption. *)

val tap_pearl : unit -> Lid.Pearl.t
(** The 2-in/2-out pearl used by {!ring_tapped}: both outputs carry the sum
    of the loop input and the external input. *)

val ring_tapped :
  n_shells:int ->
  ?stations:kind list ->
  ?source_pattern:Pattern.t ->
  ?sink_pattern:Pattern.t ->
  unit ->
  Network.t
(** A ring whose every channel carries [stations], where one loop shell
    consumes from a source and one produces into a sink — the standard
    open-loop workload for deadlock studies. *)

val random_dag :
  rng:Random.State.t ->
  n_shells:int ->
  ?max_stations:int ->
  ?half_probability:float ->
  unit ->
  Network.t
(** A random connected feed-forward network: sources feed a random DAG of
    1- and 2-input shells; every dangling output feeds a sink.  Station
    chains have 1..[max_stations] stations, each half with
    [half_probability] (default 0). *)

val random_loopy :
  rng:Random.State.t ->
  n_shells:int ->
  ?extra_back_edges:int ->
  ?max_stations:int ->
  ?half_probability:float ->
  unit ->
  Network.t
(** [random_dag] plus [extra_back_edges] (default 1) backward channels that
    close loops (inserted by widening the pearls they touch). *)

(** {1 NoC-scale families}

    The regular fabrics of the network-on-chip literature, sized by
    parameters rather than drawn by hand — the workload of the serve
    daemon and the E19 amortization bench.  All are built from standard
    pearls, so {!Spec.print} output round-trips through {!Spec.parse};
    all are reachable from the spec syntax ([generate mesh 32 32]) and
    [lidtool gen]. *)

val mesh : ?stations:kind list -> n:int -> m:int -> unit -> Network.t
(** Unidirectional [n] x [m] mesh (systolic-array orientation): node
    [(i,j)] consumes from the west and the north, produces east and
    south; [n + m] free-running sources drive the west and north faces,
    [n + m] sinks drain the east and south faces.  [stations] (default
    [[Full]]) spans every hop.  All monotone paths between two grid
    points have equal hop count, so the fabric is balanced: throughput
    1, no LID003/LID004. *)

val torus : ?stations:kind list -> n:int -> m:int -> unit -> Network.t
(** The mesh with wrap-around links instead of an environment: a closed
    system ([n], [m] >= 2) of row and column rings.  Every cycle passes
    through shells, so no token-free (LID004) cycle exists; a ring of
    [k] shells spanned by [R] stations caps throughput at [k/(k+R)]
    (LID003 with the default chain). *)

val butterfly : ?stations:kind list -> k:int -> unit -> Network.t
(** The radix-2 butterfly graph on [2^k] lines, [k] >= 1: stage 0 forks
    each of the [2^k] inputs, stages 1..k-1 route straight/cross, stage
    [k] joins into the sinks.  Balanced — every source-to-sink path
    crosses [k+1] shells — so throughput 1. *)

val random_soc :
  rng:Random.State.t ->
  n_shells:int ->
  ?loop_density:float ->
  ?reconv_density:float ->
  ?max_stations:int ->
  ?half_probability:float ->
  unit ->
  Network.t
(** An irregular SoC-like graph with explicit density knobs.
    [loop_density] (default 0.1) is the fraction of shells that anchor a
    backward edge closing a loop; [reconv_density] (default 0.5) is both
    the share of join (2-input) pearls and the probability a join pulls
    its second input from the existing fabric (a reconvergent path)
    rather than a fresh source.  Station chains have
    1..[max_stations] (default 3) stations, each half with
    [half_probability] (default 0).  Fully seeded by [rng]. *)
