type node_id = int
type edge_id = int

type node_kind =
  | Shell of Lid.Pearl.t
  | Source of { pattern : Pattern.t; start : int }
  | Sink of { pattern : Pattern.t }

type node = { id : node_id; name : string; kind : node_kind }
type endpoint = { node : node_id; port : int }

type edge = {
  id : edge_id;
  src : endpoint;
  dst : endpoint;
  stations : Lid.Relay_station.kind list;
  latency : Lid.Latency.profile option;
}

type t = {
  nodes : node array;
  edges : edge array;
  in_edges : edge array array; (* node -> dst port -> edge *)
  out_edges : edge array array; (* node -> src port -> edge *)
}

type builder = {
  mutable b_nodes : node list; (* reversed *)
  mutable b_edges : edge list; (* reversed *)
  mutable n_node : int;
  mutable n_edge : int;
}

let builder () = { b_nodes = []; b_edges = []; n_node = 0; n_edge = 0 }

let add_node b name kind =
  let id = b.n_node in
  b.n_node <- id + 1;
  b.b_nodes <- { id; name; kind } :: b.b_nodes;
  id

let add_shell b ?name pearl =
  let name =
    Option.value name ~default:(Printf.sprintf "%s_%d" pearl.Lid.Pearl.name b.n_node)
  in
  add_node b name (Shell pearl)

let add_source b ?name ?(start = 0) ?(pattern = Pattern.always) () =
  let name = Option.value name ~default:(Printf.sprintf "src_%d" b.n_node) in
  add_node b name (Source { pattern; start })

let add_sink b ?name ?(pattern = Pattern.never) () =
  let name = Option.value name ~default:(Printf.sprintf "sink_%d" b.n_node) in
  add_node b name (Sink { pattern })

let connect b ?(stations = [ Lid.Relay_station.Full ]) ?latency ~src:(sn, sp)
    ~dst:(dn, dp) () =
  let id = b.n_edge in
  b.n_edge <- id + 1;
  b.b_edges <-
    {
      id;
      src = { node = sn; port = sp };
      dst = { node = dn; port = dp };
      stations;
      latency;
    }
    :: b.b_edges;
  id

let arity_in node =
  match node.kind with
  | Shell p -> p.Lid.Pearl.n_inputs
  | Source _ -> 0
  | Sink _ -> 1

let arity_out node =
  match node.kind with
  | Shell p -> p.Lid.Pearl.n_outputs
  | Source _ -> 1
  | Sink _ -> 0

let is_shell_like node =
  match node.kind with Shell _ | Source _ -> true | Sink _ -> false

let build ?(allow_direct = false) b =
  let nodes = Array.of_list (List.rev b.b_nodes) in
  let edges = Array.of_list (List.rev b.b_edges) in
  let check_endpoint what ({ node; port } : endpoint) arity =
    if node < 0 || node >= Array.length nodes then
      invalid_arg (Printf.sprintf "Network.build: %s node %d does not exist" what node);
    let a = arity nodes.(node) in
    if port < 0 || port >= a then
      invalid_arg
        (Printf.sprintf "Network.build: %s port %d out of range for %S (arity %d)"
           what port nodes.(node).name a)
  in
  Array.iter
    (fun e ->
      check_endpoint "source" e.src arity_out;
      check_endpoint "destination" e.dst arity_in;
      if
        (not allow_direct)
        && e.stations = []
        && is_shell_like nodes.(e.src.node)
        && (match nodes.(e.dst.node).kind with Shell _ -> true | _ -> false)
      then
        invalid_arg
          (Printf.sprintf
             "Network.build: channel %S -> %S between two shells has no relay \
              station; the protocol requires at least one memory element \
              (use a half relay station, or ~allow_direct to override)"
             nodes.(e.src.node).name nodes.(e.dst.node).name))
    edges;
  let dummy =
    {
      id = -1;
      src = { node = -1; port = -1 };
      dst = { node = -1; port = -1 };
      stations = [];
      latency = None;
    }
  in
  let in_edges = Array.map (fun n -> Array.make (arity_in n) dummy) nodes in
  let out_edges = Array.map (fun n -> Array.make (arity_out n) dummy) nodes in
  Array.iter
    (fun e ->
      if in_edges.(e.dst.node).(e.dst.port).id <> -1 then
        invalid_arg
          (Printf.sprintf "Network.build: input port %d of %S doubly connected"
             e.dst.port nodes.(e.dst.node).name);
      in_edges.(e.dst.node).(e.dst.port) <- e;
      if out_edges.(e.src.node).(e.src.port).id <> -1 then
        invalid_arg
          (Printf.sprintf "Network.build: output port %d of %S doubly connected"
             e.src.port nodes.(e.src.node).name);
      out_edges.(e.src.node).(e.src.port) <- e)
    edges;
  Array.iteri
    (fun i ports ->
      Array.iteri
        (fun p (e : edge) ->
          if e.id = -1 then
            invalid_arg
              (Printf.sprintf "Network.build: input port %d of %S unconnected" p
                 nodes.(i).name))
        ports)
    in_edges;
  Array.iteri
    (fun i ports ->
      Array.iteri
        (fun p (e : edge) ->
          if e.id = -1 then
            invalid_arg
              (Printf.sprintf "Network.build: output port %d of %S unconnected" p
                 nodes.(i).name))
        ports)
    out_edges;
  { nodes; edges; in_edges; out_edges }

let nodes t = Array.to_list t.nodes
let edges t = Array.to_list t.edges
let node t id = t.nodes.(id)
let edge t id = t.edges.(id)
let n_nodes t = Array.length t.nodes
let n_edges t = Array.length t.edges
let in_edges t id = t.in_edges.(id)
let out_edges t id = t.out_edges.(id)

let filter_kind t f = List.filter f (nodes t)
let shells t = filter_kind t (fun n -> match n.kind with Shell _ -> true | _ -> false)
let sources t = filter_kind t (fun n -> match n.kind with Source _ -> true | _ -> false)
let sinks t = filter_kind t (fun n -> match n.kind with Sink _ -> true | _ -> false)

let n_inputs_of t id = Array.length t.in_edges.(id)
let n_outputs_of t id = Array.length t.out_edges.(id)

let station_count t kind =
  Array.fold_left
    (fun acc e -> acc + List.length (List.filter (( = ) kind) e.stations))
    0 t.edges

let is_retx = function Lid.Relay_station.Retx _ -> true | _ -> false
let has_retx (e : edge) = List.exists is_retx e.stations

let retx_count t =
  Array.fold_left
    (fun acc e -> acc + List.length (List.filter is_retx e.stations))
    0 t.edges

(* Dynamic-LID channel elaboration: a channel's latency profile drives
   either the first retransmitting station's internal hop (the station
   spans the unreliable wire) or, when the chain has no retx station, an
   entrance gate the engines place between the producer and the chain. *)

let delay_table t eid =
  match t.edges.(eid).latency with
  | None -> None
  | Some p -> Some (Lid.Latency.table ~edge:eid p)

let edge_is_gated t eid =
  t.edges.(eid).latency <> None && not (has_retx t.edges.(eid))

let has_dynamics t =
  Array.exists (fun e -> e.latency <> None || has_retx e) t.edges

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let lcm a b = a / gcd a b * b

let env_period t =
  Array.fold_left
    (fun acc n ->
      match n.kind with
      | Source { pattern; _ } | Sink { pattern } -> lcm acc (Pattern.period pattern)
      | Shell _ -> acc)
    1 t.nodes

let pp_summary fmt t =
  Format.fprintf fmt
    "network: %d shells, %d sources, %d sinks, %d channels, %d full + %d half \
     relay stations"
    (List.length (shells t))
    (List.length (sources t))
    (List.length (sinks t))
    (n_edges t)
    (station_count t Lid.Relay_station.Full)
    (station_count t Lid.Relay_station.Half);
  let retx = retx_count t in
  if retx > 0 then Format.fprintf fmt " + %d retx" retx;
  let jittered =
    Array.fold_left (fun n e -> if e.latency <> None then n + 1 else n) 0 t.edges
  in
  if jittered > 0 then
    Format.fprintf fmt ", %d variable-latency channel(s)" jittered

let with_stations t eid stations =
  let edges =
    Array.map (fun (e : edge) -> if e.id = eid then { e with stations } else e) t.edges
  in
  let replace arr = Array.map (Array.map (fun (e : edge) -> edges.(e.id))) arr in
  { t with edges; in_edges = replace t.in_edges; out_edges = replace t.out_edges }

let with_latency t eid latency =
  let edges =
    Array.map (fun (e : edge) -> if e.id = eid then { e with latency } else e) t.edges
  in
  let replace arr = Array.map (Array.map (fun (e : edge) -> edges.(e.id))) arr in
  { t with edges; in_edges = replace t.in_edges; out_edges = replace t.out_edges }
