(** A small textual description format for LID networks.

    One declaration per line; [#] starts a comment.  Grammar:

    {v
    source  NAME [start=N] [pattern=PAT]
    shell   NAME PEARL
    sink    NAME [pattern=PAT]
    SRC.PORT -> DST.PORT [: STATION ...]
    generate FAMILY ARGS...
    v}

    A [generate] line invokes a parameterized {!Generators} family
    instead of declaring nodes by hand; it must be the only declaration
    in the description.  Families:

    {v
    generate mesh N M [stations=KIND,...]
    generate torus N M [stations=KIND,...]
    generate butterfly K [stations=KIND,...]
    generate soc N [seed=S] [loops=F] [reconv=F] [max_stations=N] [half=F]
    v}

    [PEARL] is a standard pearl name ({!Lid.Pearl.of_name}); [STATION] is
    [full] or [half], listed producer-to-consumer (omitting the colon or
    the list yields a direct channel); [PAT] is [always], [never],
    [ACTIVE/PERIOD[@PHASE]] (e.g. [2/5@1]) or [%BITS] (e.g. [%10110],
    cyclically repeated).

    Example (the paper's Fig. 1):

    {v
    source src
    shell  A fork2
    shell  B identity
    shell  C adder
    sink   out
    src.0 -> A.0 : full
    A.0  -> C.0 : full
    A.1  -> B.0 : full
    B.0  -> C.1 : full
    C.0  -> out.0
    v} *)

val parse : ?allow_direct:bool -> string -> (Network.t, string) result
(** Parse a description.  The error string carries a line number. *)

val parse_exn : ?allow_direct:bool -> string -> Network.t
(** Raises [Invalid_argument] with the error message. *)

val print : Network.t -> string
(** Render a network back to the format; [parse (print net)] reconstructs
    an isomorphic network provided all pearls are standard. *)

val channel_line :
  ?stations:Lid.Relay_station.kind list -> Network.t -> Network.edge_id -> string
(** The canonical declaration line of one channel, exactly as {!print}
    emits it (no trailing newline) — so tooling output (lint fix-its)
    pastes back into a spec file unchanged.  [stations] substitutes the
    printed station list, e.g. a fix-it's proposed one. *)

val load : ?allow_direct:bool -> string -> (Network.t, string) result
(** [load path] reads and parses a file. *)
