module Net = Network

let of_network ?(highlight = []) net =
  let buf = Buffer.create 512 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph lid {\n  rankdir=LR;\n  node [fontname=\"monospace\"];\n";
  List.iter
    (fun (n : Net.node) ->
      let shape, label =
        match n.kind with
        | Net.Shell pearl ->
            ("box", Printf.sprintf "%s\\n(%s)" n.name pearl.Lid.Pearl.name)
        | Net.Source { pattern; _ } ->
            ( "ellipse",
              Printf.sprintf "%s\\nsource %s" n.name
                (Format.asprintf "%a" Pattern.pp pattern) )
        | Net.Sink { pattern } ->
            ( "ellipse",
              Printf.sprintf "%s\\nsink %s" n.name
                (Format.asprintf "%a" Pattern.pp pattern) )
      in
      let fill =
        if List.mem n.id highlight then " style=filled fillcolor=lightsalmon"
        else ""
      in
      pr "  n%d [shape=%s label=\"%s\"%s];\n" n.id shape label fill)
    (Net.nodes net);
  List.iter
    (fun (e : Net.edge) ->
      let label =
        if e.stations = [] then ""
        else
          String.concat ""
            (List.map
               (function
                 | Lid.Relay_station.Full -> "F"
                 | Lid.Relay_station.Half -> "H"
                 | Lid.Relay_station.Retx _ -> "X")
               e.stations)
      in
      pr "  n%d -> n%d [label=\"%s\" taillabel=\"%d\" headlabel=\"%d\"];\n"
        e.src.node e.dst.node label e.src.port e.dst.port)
    (Net.edges net);
  pr "}\n";
  Buffer.contents buf
