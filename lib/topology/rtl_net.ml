open Bitvec
open Hdl.Signal
module Net = Network
module R = Lid.Rtl_gen

let delay_depth name =
  (* "delayN" or a user-specified name given to Pearl.delay_chain *)
  if String.length name > 5 && String.sub name 0 5 = "delay" then
    int_of_string_opt (String.sub name 5 (String.length name - 5))
  else None

(* RTL datapath for a standard-library pearl, plus its initial outputs. *)
let datapath_of_pearl ~data_width (p : Lid.Pearl.t) =
  let w = data_width in
  let zero = Bits.zero w in
  let init_list v = List.map (fun x -> Bits.of_int ~width:w x) v in
  let simple f = (fun ~fire:_ ins -> f ins) in
  let bad () =
    invalid_arg
      (Printf.sprintf
         "Rtl_net: pearl %S has no RTL datapath (supported: identity, inc, \
          adder, diff, fork2, tap, accumulator, counter, square, delayN)"
         p.Lid.Pearl.name)
  in
  match p.Lid.Pearl.name with
  | "identity" -> (simple (fun ins -> ins), [ zero ])
  | "inc" ->
      (simple (fun ins -> List.map (fun x -> x +: consti ~width:w 1) ins), [ zero ])
  | "square" ->
      (simple (fun ins -> List.map (fun x -> x *: x) ins), [ zero ])
  | "adder" ->
      ( simple (fun ins ->
            match ins with [ a; b ] -> [ a +: b ] | _ -> bad ()),
        [ zero ] )
  | "diff" ->
      ( simple (fun ins ->
            match ins with [ a; b ] -> [ a -: b ] | _ -> bad ()),
        [ zero ] )
  | "fork2" ->
      (simple (fun ins -> match ins with [ a ] -> [ a; a ] | _ -> bad ()), [ zero; zero ])
  | "tap" ->
      ( simple (fun ins ->
            match ins with
            | [ a; b ] ->
                let v = a +: b in
                [ v; v ]
            | _ -> bad ()),
        [ zero; zero ] )
  | "accumulator" ->
      ( (fun ~fire ins ->
          match ins with
          | [ x ] ->
              let acc =
                reg_fb ~name:"acc" ~enable:fire ~reset:zero ~width:w (fun acc ->
                    acc +: x)
              in
              [ acc +: x ]
          | _ -> bad ()),
        [ zero ] )
  | "counter" ->
      let start = p.Lid.Pearl.initial_output.(0) in
      ( (fun ~fire ins ->
          match ins with
          | [] ->
              let cnt =
                reg_fb ~name:"cnt" ~enable:fire
                  ~reset:(Bits.of_int ~width:w (start + 1))
                  ~width:w
                  (fun cnt -> cnt +: consti ~width:w 1)
              in
              [ cnt ]
          | _ -> bad ()),
        init_list [ start ] )
  | name -> (
      match delay_depth name with
      | Some k ->
          ( (fun ~fire ins ->
              match ins with
              | [ x ] ->
                  let rec stage i d =
                    if i = 0 then d
                    else stage (i - 1) (reg ~enable:fire ~reset:zero d)
                  in
                  (* k registers; the pearl's visible output is the value
                     about to be latched into the buffer, i.e. the chain
                     head of depth k *)
                  [ stage k x ]
              | _ -> bad ()),
            [ zero ] )
      | None -> bad ())

let of_network ?(flavour = Lid.Protocol.Optimized) ?(data_width = 16)
    ?(name = "lid_system") net =
  let nodes = Array.of_list (Net.nodes net) in
  (* per-edge interface wires *)
  let dst_port =
    Array.of_list
      (List.map
         (fun (e : Net.edge) ->
           {
             R.valid = wire ~name:(Printf.sprintf "e%d_valid" e.id) 1;
             R.data = wire ~name:(Printf.sprintf "e%d_data" e.id) data_width;
           })
         (Net.edges net))
  in
  let src_stop =
    Array.of_list
      (List.map
         (fun (e : Net.edge) -> wire ~name:(Printf.sprintf "e%d_stop" e.id) 1)
         (Net.edges net))
  in
  (* environment *)
  let stall_inputs = Hashtbl.create 8 in
  Array.iter
    (fun (n : Net.node) ->
      match n.kind with
      | Net.Sink _ -> Hashtbl.replace stall_inputs n.id (input ("stall_" ^ n.name) 1)
      | Net.Source { pattern; _ } ->
          if pattern <> Pattern.always then
            invalid_arg "Rtl_net: sources must use the Always pattern"
      | Net.Shell _ -> ())
    nodes;
  (* shells and sources *)
  let out_ports = Array.make (Array.length nodes) [||] in
  let in_stops = Array.make (Array.length nodes) [||] in
  Array.iter
    (fun (n : Net.node) ->
      let build pearl =
        let datapath, initial_outputs =
          datapath_of_pearl ~data_width pearl
        in
        let initial_outputs =
          List.mapi
            (fun o _ ->
              Bits.of_int ~width:data_width pearl.Lid.Pearl.initial_output.(o))
            initial_outputs
        in
        let spec =
          {
            R.name = pearl.Lid.Pearl.name;
            data_width;
            n_inputs = pearl.Lid.Pearl.n_inputs;
            n_outputs = pearl.Lid.Pearl.n_outputs;
            initial_outputs;
            datapath;
          }
        in
        let inputs =
          Array.to_list
            (Array.map (fun (e : Net.edge) -> dst_port.(e.id)) (Net.in_edges net n.id))
        in
        let stop_ins =
          Array.to_list
            (Array.map (fun (e : Net.edge) -> src_stop.(e.id)) (Net.out_edges net n.id))
        in
        let ports, stops = R.shell_fragment ~flavour spec ~inputs ~stop_ins in
        out_ports.(n.id) <- Array.of_list ports;
        in_stops.(n.id) <- Array.of_list stops
      in
      match n.kind with
      | Net.Shell pearl -> build pearl
      | Net.Source { start; _ } -> build (Lid.Pearl.counter ~start ())
      | Net.Sink _ -> ())
    nodes;
  (* channels: relay chains plus the backward stop wiring *)
  List.iter
    (fun (e : Net.edge) ->
      let dst_stop_sig =
        match nodes.(e.dst.node).kind with
        | Net.Sink _ -> Hashtbl.find stall_inputs e.dst.node
        | Net.Shell _ | Net.Source _ -> in_stops.(e.dst.node).(e.dst.port)
      in
      if Net.edge_is_gated net e.id then
        invalid_arg
          (Printf.sprintf
             "Rtl_net: channel e%d has a latency profile but no \
              retransmitting station — the entrance gate is a simulation \
              artifact with no hardware realization; add a retx station to \
              the channel or drop the profile"
             e.id);
      (* The channel's delay schedule drives the internal hop of the first
         retransmitting station, exactly as in the skeleton engines. *)
      let table = Net.delay_table net e.id in
      let first_retx =
        let rec find j = function
          | [] -> -1
          | Lid.Relay_station.Retx _ :: _ -> j
          | _ :: rest -> find (j + 1) rest
        in
        find 0 e.stations
      in
      let m = List.length e.stations in
      let stop_wires =
        Array.init m (fun j -> wire ~name:(Printf.sprintf "e%d_rs%d_stop" e.id j) 1)
      in
      let rec build j port ups =
        if j = m then (port, List.rev ups)
        else begin
          let table = if j = first_retx then table else None in
          let p, up =
            R.relay_station_fragment ~flavour ?table (List.nth e.stations j)
              ~input:port ~stop_in:stop_wires.(j)
          in
          build (j + 1) p (up :: ups)
        end
      in
      let final_port, ups =
        build 0 out_ports.(e.src.node).(e.src.port) []
      in
      let ups = Array.of_list ups in
      Array.iteri
        (fun j w ->
          assign w (if j = m - 1 then dst_stop_sig else ups.(j + 1)))
        stop_wires;
      assign dst_port.(e.id).R.valid final_port.R.valid;
      assign dst_port.(e.id).R.data final_port.R.data;
      assign src_stop.(e.id) (if m > 0 then ups.(0) else dst_stop_sig))
    (Net.edges net);
  (* circuit interface *)
  let inputs = Hashtbl.fold (fun _ i acc -> i :: acc) stall_inputs [] in
  let outputs =
    List.concat_map
      (fun (n : Net.node) ->
        match n.kind with
        | Net.Sink _ ->
            let e = (Net.in_edges net n.id).(0) in
            [
              output ("valid_" ^ n.name) dst_port.(e.id).R.valid;
              output ("data_" ^ n.name) dst_port.(e.id).R.data;
            ]
        | _ -> [])
      (Net.nodes net)
  in
  (* closed systems (no sinks) still need observable anchors *)
  let outputs =
    if outputs <> [] then outputs
    else
      List.concat_map
        (fun (n : Net.node) ->
          match n.kind with
          | Net.Shell _ ->
              [
                output ("probe_valid_" ^ n.name) out_ports.(n.id).(0).R.valid;
                output ("probe_data_" ^ n.name) out_ports.(n.id).(0).R.data;
              ]
          | _ -> [])
        (Net.nodes net)
  in
  Hdl.Circuit.create ~name ~inputs ~outputs
