module Net = Network

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Patterns.                                                           *)

let parse_pattern s =
  match s with
  | "always" -> Pattern.always
  | "never" -> Pattern.never
  | _ ->
      if String.length s > 1 && s.[0] = '%' then
        let bits =
          List.init
            (String.length s - 1)
            (fun i ->
              match s.[i + 1] with
              | '0' -> false
              | '1' -> true
              | c -> fail "bad pattern bit %c" c)
        in
        Pattern.word bits
      else begin
        (* ACTIVE/PERIOD[@PHASE] *)
        let main, phase =
          match String.index_opt s '@' with
          | None -> (s, 0)
          | Some i -> (
              ( String.sub s 0 i,
                match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
                | Some p -> p
                | None -> fail "bad pattern phase in %S" s ))
        in
        match String.split_on_char '/' main with
        | [ a; p ] -> (
            match (int_of_string_opt a, int_of_string_opt p) with
            | Some active, Some period -> (
                try Pattern.periodic ~phase ~period ~active ()
                with Invalid_argument m -> fail "%s" m)
            | _ -> fail "bad pattern %S" s)
        | _ -> fail "bad pattern %S (want always, never, A/P[@PH] or %%bits)" s
      end

let print_pattern p =
  match p with
  | Pattern.Always -> "always"
  | Pattern.Never -> "never"
  | Pattern.Periodic { period; active; phase } ->
      if phase = 0 then Printf.sprintf "%d/%d" active period
      else Printf.sprintf "%d/%d@%d" active period phase
  | Pattern.Word w ->
      "%"
      ^ String.init (Array.length w) (fun i -> if w.(i) then '1' else '0')

(* ------------------------------------------------------------------ *)
(* Parsing.                                                            *)

let split_words line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let parse_kv words =
  (* [start=N] [pattern=...] in any order *)
  List.fold_left
    (fun (start, pattern) w ->
      match String.index_opt w '=' with
      | Some i ->
          let k = String.sub w 0 i
          and v = String.sub w (i + 1) (String.length w - i - 1) in
          (match k with
          | "start" -> (
              match int_of_string_opt v with
              | Some n -> (Some n, pattern)
              | None -> fail "bad start=%s" v)
          | "pattern" -> (start, Some (parse_pattern v))
          | _ -> fail "unknown attribute %S" k)
      | None -> fail "expected key=value, got %S" w)
    (None, None) words

let parse_endpoint names s =
  match String.rindex_opt s '.' with
  | None -> fail "endpoint %S must be NAME.PORT" s
  | Some i -> (
      let name = String.sub s 0 i
      and port = String.sub s (i + 1) (String.length s - i - 1) in
      match (Hashtbl.find_opt names name, int_of_string_opt port) with
      | Some id, Some p -> (id, p)
      | None, _ -> fail "unknown node %S" name
      | _, None -> fail "bad port %S" port)

let parse_station = function
  | "full" -> Lid.Relay_station.Full
  | "half" -> Lid.Relay_station.Half
  | "retx" -> Lid.Relay_station.Retx { depth = 4 }
  | s -> (
      match String.split_on_char ':' s with
      | [ "retx"; d ] -> (
          match int_of_string_opt d with
          | Some depth when depth >= 1 -> Lid.Relay_station.Retx { depth }
          | _ -> fail "bad retx depth %S (want retx:DEPTH, DEPTH >= 1)" d)
      | _ -> fail "unknown station kind %S (want full, half or retx[:DEPTH])" s)

(* ------------------------------------------------------------------ *)
(* Generator invocations: [generate FAMILY ARGS...] builds one of the
   parameterized NoC families instead of declaring nodes by hand.       *)

let parse_generate words =
  let pos_int what v =
    match int_of_string_opt v with
    | Some n -> n
    | None -> fail "bad %s %S (want an integer)" what v
  in
  let pos_float what v =
    match float_of_string_opt v with
    | Some f -> f
    | None -> fail "bad %s %S (want a number)" what v
  in
  let stations_of v =
    match String.split_on_char ',' v with
    | [] | [ "" ] -> fail "empty stations list"
    | kinds -> List.map parse_station kinds
  in
  let split_attrs attrs =
    List.map
      (fun w ->
        match String.index_opt w '=' with
        | Some i ->
            (String.sub w 0 i, String.sub w (i + 1) (String.length w - i - 1))
        | None -> fail "expected key=value, got %S" w)
      attrs
  in
  let grid family gen args =
    match args with
    | n :: m :: attrs ->
        let n = pos_int (family ^ " rows") n
        and m = pos_int (family ^ " columns") m in
        let stations = ref None in
        List.iter
          (fun (k, v) ->
            match k with
            | "stations" -> stations := Some (stations_of v)
            | _ -> fail "unknown %s attribute %S" family k)
          (split_attrs attrs);
        gen ?stations:!stations ~n ~m ()
    | _ -> fail "generate %s wants N M [stations=KIND,...]" family
  in
  match words with
  | "mesh" :: args -> grid "mesh" Generators.mesh args
  | "torus" :: args -> grid "torus" Generators.torus args
  | "butterfly" :: k :: attrs ->
      let k = pos_int "butterfly order" k in
      let stations = ref None in
      List.iter
        (fun (key, v) ->
          match key with
          | "stations" -> stations := Some (stations_of v)
          | _ -> fail "unknown butterfly attribute %S" key)
        (split_attrs attrs);
      Generators.butterfly ?stations:!stations ~k ()
  | "soc" :: n :: attrs ->
      let n_shells = pos_int "soc size" n in
      let seed = ref 1
      and loops = ref None
      and reconv = ref None
      and max_stations = ref None
      and half = ref None in
      List.iter
        (fun (k, v) ->
          match k with
          | "seed" -> seed := pos_int "seed" v
          | "loops" -> loops := Some (pos_float "loops" v)
          | "reconv" -> reconv := Some (pos_float "reconv" v)
          | "max_stations" -> max_stations := Some (pos_int "max_stations" v)
          | "half" -> half := Some (pos_float "half" v)
          | _ -> fail "unknown soc attribute %S" k)
        (split_attrs attrs);
      let rng = Random.State.make [| 0x50c; !seed |] in
      Generators.random_soc ~rng ~n_shells ?loop_density:!loops
        ?reconv_density:!reconv ?max_stations:!max_stations
        ?half_probability:!half ()
  | family :: _ ->
      fail "unknown generator %S (want mesh, torus, butterfly or soc)" family
  | [] -> fail "generate wants a family (mesh, torus, butterfly or soc)"

let parse ?allow_direct text =
  let b = Net.builder () in
  let names = Hashtbl.create 16 in
  let declare name id =
    if Hashtbl.mem names name then fail "duplicate node name %S" name;
    Hashtbl.replace names name id
  in
  let parse_words words =
    match words with
    | [] -> ()
    | "source" :: name :: attrs ->
        let start, pattern = parse_kv attrs in
        declare name
          (Net.add_source b ~name ?start ?pattern ())
    | "shell" :: name :: pearl :: rest ->
        if rest <> [] then fail "trailing words after shell declaration";
        (match Lid.Pearl.of_name pearl with
        | Some p -> declare name (Net.add_shell b ~name p)
        | None ->
            fail "unknown pearl %S (standard: %s)" pearl
              (String.concat ", " Lid.Pearl.standard_names))
    | "sink" :: name :: attrs ->
        let start, pattern = parse_kv attrs in
        if start <> None then fail "sinks have no start attribute";
        declare name (Net.add_sink b ~name ?pattern ())
    | words -> (
        (* SRC.PORT -> DST.PORT [: stations] *)
        let before_colon, stations =
          let rec split acc = function
            | [] -> (List.rev acc, [])
            | ":" :: rest -> (List.rev acc, rest)
            | w :: rest -> split (w :: acc) rest
          in
          split [] words
        in
        match before_colon with
        | src :: "->" :: dst :: attrs ->
            let src = parse_endpoint names src in
            let dst = parse_endpoint names dst in
            let latency =
              List.fold_left
                (fun lat w ->
                  match String.index_opt w '=' with
                  | Some i when String.sub w 0 i = "latency" -> (
                      if lat <> None then fail "duplicate latency attribute";
                      let v = String.sub w (i + 1) (String.length w - i - 1) in
                      match Lid.Latency.of_string v with
                      | Some p -> Some p
                      | None ->
                          fail
                            "bad latency profile %S (want fixed:D, \
                             jitter:BASE:BOUND:SEED, dist:LEN:PITCH or \
                             table:D0,D1,...)"
                            v)
                  | _ -> fail "unknown edge attribute %S" w)
                None attrs
            in
            let stations = List.map parse_station stations in
            ignore (Net.connect b ~stations ?latency ~src ~dst ())
        | _ -> fail "cannot parse %S" (String.concat " " words))
  in
  let strip_comment line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let stripped =
    List.mapi
      (fun i line -> (i + 1, split_words (strip_comment line)))
      (String.split_on_char '\n' text)
  in
  let generates, declarations =
    List.partition
      (fun (_, words) ->
        match words with "generate" :: _ -> true | _ -> false)
      (List.filter (fun (_, words) -> words <> []) stripped)
  in
  match generates with
  | (line, _) :: _ when declarations <> [] ->
      Error
        (Printf.sprintf
           "line %d: a generate line must be the only declaration" line)
  | _ :: (line, _) :: _ ->
      Error (Printf.sprintf "line %d: multiple generate lines" line)
  | [ (line, words) ] -> (
      match parse_generate (List.tl words) with
      | net -> Ok net
      | exception Parse_error m -> Error (Printf.sprintf "line %d: %s" line m)
      | exception Invalid_argument m ->
          Error (Printf.sprintf "line %d: %s" line m))
  | [] -> (
      try
        List.iter
          (fun (i, words) ->
            try parse_words words
            with Parse_error m -> fail "line %d: %s" i m)
          stripped;
        try Ok (Net.build ?allow_direct b)
        with Invalid_argument m -> Error m
      with Parse_error m -> Error m)

let parse_exn ?allow_direct text =
  match parse ?allow_direct text with
  | Ok net -> net
  | Error m -> invalid_arg ("Spec.parse: " ^ m)

let load ?allow_direct path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse ?allow_direct text
  | exception Sys_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Printing.                                                           *)

let channel_line ?stations net eid =
  let e = Net.edge net eid in
  let stations = Option.value ~default:e.Net.stations stations in
  let buf = Buffer.create 64 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "%s.%d -> %s.%d" (Net.node net e.src.node).name e.src.port
    (Net.node net e.dst.node).name e.dst.port;
  (match e.latency with
  | Some p -> pr " latency=%s" (Lid.Latency.to_string p)
  | None -> ());
  if stations <> [] then begin
    pr " :";
    List.iter (fun k -> pr " %s" (Lid.Relay_station.kind_to_string k)) stations
  end;
  Buffer.contents buf

let print net =
  let buf = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (n : Net.node) ->
      match n.kind with
      | Net.Source { pattern; start } ->
          pr "source %s%s%s\n" n.name
            (if start <> 0 then Printf.sprintf " start=%d" start else "")
            (if pattern <> Pattern.always then
               " pattern=" ^ print_pattern pattern
             else "")
      | Net.Shell pearl -> pr "shell  %s %s\n" n.name pearl.Lid.Pearl.name
      | Net.Sink { pattern } ->
          pr "sink   %s%s\n" n.name
            (if pattern <> Pattern.never then
               " pattern=" ^ print_pattern pattern
             else ""))
    (Net.nodes net);
  List.iter
    (fun (e : Net.edge) -> pr "%s\n" (channel_line net e.Net.id))
    (Net.edges net);
  Buffer.contents buf
