module Net = Network

type shape =
  | Tree
  | Reconvergent_feedforward
  | Join_feedforward
  | Single_loop
  | General_cyclic

type info = {
  shape : shape;
  cyclic : bool;
  n_simple_cycles : int;
  reconvergent_joins : Net.node_id list;
  longest_path : int;
}

let shape_to_string = function
  | Tree -> "tree"
  | Reconvergent_feedforward -> "reconvergent feed-forward"
  | Join_feedforward -> "join feed-forward"
  | Single_loop -> "single loop"
  | General_cyclic -> "general (with loops)"

(* Successor node ids in the channel graph restricted to shell-like nodes
   (sinks are drains and never on cycles; keep them for path length). *)
let successors net id =
  Array.to_list (Net.out_edges net id) |> List.map (fun (e : Net.edge) -> e.dst.node)

let node_ids net = List.map (fun (n : Net.node) -> n.id) (Net.nodes net)

let is_cyclic net =
  let color = Hashtbl.create 16 in
  let rec visit v =
    match Hashtbl.find_opt color v with
    | Some `Gray -> true
    | Some `Black -> false
    | None ->
        Hashtbl.replace color v `Gray;
        let c = List.exists visit (successors net v) in
        Hashtbl.replace color v `Black;
        c
  in
  List.exists visit (node_ids net)

(* Simple-cycle enumeration by DFS from each root, only visiting nodes with
   id >= root (Johnson-style canonicalization). *)
let simple_cycles ?(limit = 1000) net =
  let cycles = ref [] in
  let n_found = ref 0 in
  let rec dfs root path on_path v =
    if !n_found < limit then
      List.iter
        (fun w ->
          if w = root then begin
            incr n_found;
            if !n_found <= limit then cycles := List.rev path :: !cycles
          end
          else if w > root && not (List.mem w on_path) then
            dfs root (w :: path) (w :: on_path) w)
        (successors net v)
  in
  List.iter (fun root -> dfs root [ root ] [ root ] root) (node_ids net);
  List.rev !cycles

let loop_stations net cycle =
  let arr = Array.of_list cycle in
  let n = Array.length arr in
  let full = ref 0 and half = ref 0 in
  for i = 0 to n - 1 do
    let u = arr.(i) and v = arr.((i + 1) mod n) in
    let e =
      Array.to_list (Net.out_edges net u)
      |> List.find_opt (fun (e : Net.edge) -> e.dst.node = v)
    in
    match e with
    | None -> invalid_arg "Classify.loop_stations: not a cycle of this network"
    | Some e ->
        List.iter
          (function
            (* a retransmitting station stores >= 2 tokens and pipelines
               the wire, so for loop-capacity purposes it counts as full *)
            | Lid.Relay_station.Full | Lid.Relay_station.Retx _ -> incr full
            | Lid.Relay_station.Half -> incr half)
          e.stations
  done;
  (!full, !half)

(* Ancestor sets as bitsets over node ids; only valid on DAGs. *)
let ancestor_sets net =
  let n = Net.n_nodes net in
  let anc = Array.make n [] in
  let indeg = Array.make n 0 in
  List.iter (fun (e : Net.edge) -> indeg.(e.dst.node) <- indeg.(e.dst.node) + 1) (Net.edges net);
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let module S = Set.Make (Int) in
  let sets = Array.make n S.empty in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun (e : Net.edge) ->
        let w = e.dst.node in
        sets.(w) <- S.union sets.(w) (S.add v sets.(v));
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      (Net.out_edges net v)
  done;
  Array.iteri (fun i s -> anc.(i) <- S.elements s) sets;
  (sets, anc)

let reconvergent_joins net =
  let module S = Set.Make (Int) in
  let sets, _ = ancestor_sets net in
  List.filter_map
    (fun (n : Net.node) ->
      let ins = Net.in_edges net n.id in
      if Array.length ins < 2 then None
      else begin
        (* two input channels sharing an ancestor (or one feeding from the
           other's ancestry) reconverge at [n] *)
        let closure (e : Net.edge) = S.add e.src.node sets.(e.src.node) in
        let found = ref false in
        Array.iteri
          (fun i ei ->
            Array.iteri
              (fun j ej ->
                if i < j && not (S.is_empty (S.inter (closure ei) (closure ej)))
                then found := true)
              ins)
          ins;
        if !found then Some n.id else None
      end)
    (Net.nodes net)

let longest_path net =
  (* forward latency: 1 per producer output buffer + full stations *)
  let n = Net.n_nodes net in
  let dist = Array.make n 0 in
  let indeg = Array.make n 0 in
  List.iter (fun (e : Net.edge) -> indeg.(e.dst.node) <- indeg.(e.dst.node) + 1) (Net.edges net);
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let best = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun (e : Net.edge) ->
        let fulls =
          List.length (List.filter (( = ) Lid.Relay_station.Full) e.stations)
        in
        let w = e.dst.node in
        dist.(w) <- max dist.(w) (dist.(v) + 1 + fulls);
        best := max !best dist.(w);
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      (Net.out_edges net v)
  done;
  !best

let classify ?(max_cycles = 1000) net =
  let cyclic = is_cyclic net in
  if cyclic then begin
    let cycles = simple_cycles ~limit:max_cycles net in
    let n_cycles = List.length cycles in
    let nodes_on_cycles =
      List.concat cycles |> List.sort_uniq Stdlib.compare |> List.length
    in
    let shellish =
      List.length (Net.shells net) + List.length (Net.sources net)
    in
    let shape =
      if n_cycles = 1 && nodes_on_cycles = shellish then Single_loop
      else General_cyclic
    in
    {
      shape;
      cyclic = true;
      n_simple_cycles = n_cycles;
      reconvergent_joins = [];
      longest_path = 0;
    }
  end
  else begin
    let joins = reconvergent_joins net in
    let multi_in =
      List.exists
        (fun (n : Net.node) ->
          (match n.kind with Net.Shell _ -> true | _ -> false)
          && Array.length (Net.in_edges net n.id) >= 2)
        (Net.nodes net)
    in
    let shape =
      if joins <> [] then Reconvergent_feedforward
      else if multi_in then Join_feedforward
      else Tree
    in
    {
      shape;
      cyclic = false;
      n_simple_cycles = 0;
      reconvergent_joins = joins;
      longest_path = longest_path net;
    }
  end

let pp fmt i =
  Format.fprintf fmt "%s (cycles=%d, reconvergent joins=%d, longest path=%d)"
    (shape_to_string i.shape) i.n_simple_cycles
    (List.length i.reconvergent_joins)
    i.longest_path
