open Lid.Relay_station

let full_chain n = List.init n (fun _ -> Full)

let fig1 ?(r_direct = 1) ?(r_to_b = 1) ?(r_from_b = 1) () =
  let b = Network.builder () in
  let src = Network.add_source b ~name:"src" () in
  let a = Network.add_shell b ~name:"A" (Lid.Pearl.fork2 ()) in
  let bn = Network.add_shell b ~name:"B" (Lid.Pearl.identity ()) in
  let c = Network.add_shell b ~name:"C" (Lid.Pearl.adder ()) in
  let sink = Network.add_sink b ~name:"out" () in
  let _ = Network.connect b ~src:(src, 0) ~dst:(a, 0) () in
  let _ =
    Network.connect b ~stations:(full_chain r_direct) ~src:(a, 0) ~dst:(c, 0) ()
  in
  let _ =
    Network.connect b ~stations:(full_chain r_to_b) ~src:(a, 1) ~dst:(bn, 0) ()
  in
  let _ =
    Network.connect b ~stations:(full_chain r_from_b) ~src:(bn, 0) ~dst:(c, 1) ()
  in
  let _ = Network.connect b ~stations:[] ~src:(c, 0) ~dst:(sink, 0) () in
  Network.build b

let reconvergent ?(stations_kind = Full) ~r_short ~r_long_head ~r_long_tail () =
  let chain n = List.init n (fun _ -> stations_kind) in
  let b = Network.builder () in
  let src = Network.add_source b ~name:"src" () in
  let a = Network.add_shell b ~name:"A" (Lid.Pearl.fork2 ()) in
  let bn = Network.add_shell b ~name:"B" (Lid.Pearl.identity ()) in
  let c = Network.add_shell b ~name:"C" (Lid.Pearl.adder ()) in
  let sink = Network.add_sink b ~name:"out" () in
  let _ = Network.connect b ~src:(src, 0) ~dst:(a, 0) () in
  let _ = Network.connect b ~stations:(chain (max 1 r_short)) ~src:(a, 0) ~dst:(c, 0) () in
  let _ = Network.connect b ~stations:(chain (max 1 r_long_head)) ~src:(a, 1) ~dst:(bn, 0) () in
  let _ = Network.connect b ~stations:(chain (max 1 r_long_tail)) ~src:(bn, 0) ~dst:(c, 1) () in
  let _ = Network.connect b ~stations:[] ~src:(c, 0) ~dst:(sink, 0) () in
  Network.build b

let fig2 ?(stations_ab = 1) ?(stations_ba = 1) () =
  let b = Network.builder () in
  let a = Network.add_shell b ~name:"A" (Lid.Pearl.identity ()) in
  let bn = Network.add_shell b ~name:"B" (Lid.Pearl.identity ()) in
  let _ = Network.connect b ~stations:(full_chain stations_ab) ~src:(a, 0) ~dst:(bn, 0) () in
  let _ = Network.connect b ~stations:(full_chain stations_ba) ~src:(bn, 0) ~dst:(a, 0) () in
  Network.build b

let chain ?(n_shells = 3) ?(stations = [ Full ]) ?(source_pattern = Pattern.always)
    ?(sink_pattern = Pattern.never) () =
  let b = Network.builder () in
  let src = Network.add_source b ~name:"src" ~pattern:source_pattern () in
  let shells =
    List.init n_shells (fun i ->
        Network.add_shell b ~name:(Printf.sprintf "s%d" i) (Lid.Pearl.identity ()))
  in
  let sink = Network.add_sink b ~name:"out" ~pattern:sink_pattern () in
  let rec wire prev = function
    | [] -> ignore (Network.connect b ~stations ~src:(prev, 0) ~dst:(sink, 0) ())
    | s :: rest ->
        ignore (Network.connect b ~stations ~src:(prev, 0) ~dst:(s, 0) ());
        wire s rest
  in
  wire src shells;
  Network.build b

let tree ~depth ?(stations = [ Full ]) () =
  if depth < 1 then invalid_arg "Generators.tree: depth must be >= 1";
  let b = Network.builder () in
  let src = Network.add_source b ~name:"src" () in
  (* Build forks level by level; returns the open endpoints of a subtree. *)
  let rec grow level parent_port =
    if level = depth then begin
      let sink = Network.add_sink b () in
      ignore (Network.connect b ~stations ~src:parent_port ~dst:(sink, 0) ())
    end
    else begin
      let f =
        Network.add_shell b ~name:(Printf.sprintf "fork_l%d_%d" level (fst parent_port))
          (Lid.Pearl.fork2 ())
      in
      ignore (Network.connect b ~stations ~src:parent_port ~dst:(f, 0) ());
      grow (level + 1) (f, 0);
      grow (level + 1) (f, 1)
    end
  in
  grow 0 (src, 0);
  Network.build b

let ring ~n_shells ?(stations = [ Full ]) () =
  if n_shells < 2 then invalid_arg "Generators.ring: need at least 2 shells";
  let b = Network.builder () in
  let shells =
    Array.init n_shells (fun i ->
        Network.add_shell b ~name:(Printf.sprintf "s%d" i) (Lid.Pearl.identity ()))
  in
  Array.iteri
    (fun i s ->
      let next = shells.((i + 1) mod n_shells) in
      ignore (Network.connect b ~stations ~src:(s, 0) ~dst:(next, 0) ()))
    shells;
  Network.build b

let tap_pearl () =
  Lid.Pearl.create ~name:"tap" ~n_inputs:2 ~n_outputs:2 ~initial_output:[| 0; 0 |]
    (fun state inputs ->
      let v = inputs.(0) + inputs.(1) in
      (state, [| v; v |]))

let ring_tapped ~n_shells ?(stations = [ Full ]) ?(source_pattern = Pattern.always)
    ?(sink_pattern = Pattern.never) () =
  if n_shells < 2 then invalid_arg "Generators.ring_tapped: need at least 2 shells";
  let b = Network.builder () in
  let src = Network.add_source b ~name:"src" ~pattern:source_pattern () in
  let sink = Network.add_sink b ~name:"out" ~pattern:sink_pattern () in
  (* Shell 0 is the tap: input 0 from the loop, input 1 from the source;
     output 0 to the loop, output 1 to the sink. *)
  let tap = Network.add_shell b ~name:"tap" (tap_pearl ()) in
  let shells =
    Array.init (n_shells - 1) (fun i ->
        Network.add_shell b ~name:(Printf.sprintf "s%d" (i + 1)) (Lid.Pearl.identity ()))
  in
  let _ = Network.connect b ~src:(src, 0) ~dst:(tap, 1) () in
  let _ = Network.connect b ~stations:[] ~src:(tap, 1) ~dst:(sink, 0) () in
  let loop_nodes = Array.append [| tap |] shells in
  Array.iteri
    (fun i s ->
      let next = loop_nodes.((i + 1) mod Array.length loop_nodes) in
      ignore (Network.connect b ~stations ~src:(s, 0) ~dst:(next, 0) ()))
    loop_nodes;
  Network.build b

(* ------------------------------------------------------------------ *)
(* Random instances.                                                   *)

let random_stations rng ~max_stations ~half_probability =
  let n = 1 + Random.State.int rng (max max_stations 1) in
  List.init n (fun _ ->
      if Random.State.float rng 1.0 < half_probability then Half else Full)

let random_pearl rng =
  match Random.State.int rng 6 with
  | 0 -> Lid.Pearl.identity ()
  | 1 -> Lid.Pearl.map1 ~name:"inc" (fun v -> v + 1)
  | 2 -> Lid.Pearl.adder ()
  | 3 -> Lid.Pearl.accumulator ()
  | 4 -> Lid.Pearl.delay_chain 2
  | _ -> Lid.Pearl.combine ~name:"diff" (fun a c -> a - c)

let random_pearl_1in rng =
  match Random.State.int rng 4 with
  | 0 -> Lid.Pearl.identity ()
  | 1 -> Lid.Pearl.map1 ~name:"inc" (fun v -> v + 1)
  | 2 -> Lid.Pearl.accumulator ()
  | _ -> Lid.Pearl.delay_chain 2

let random_net ~rng ~n_shells ~back_edges ~max_stations ~half_probability =
  let b = Network.builder () in
  (* [avail] holds output endpoints not yet consumed. *)
  let avail = ref [] in
  let take_avail () =
    match !avail with
    | [] ->
        let s = Network.add_source b () in
        (s, 0)
    | _ ->
        let i = Random.State.int rng (List.length !avail) in
        let ep = List.nth !avail i in
        avail := List.filteri (fun j _ -> j <> i) !avail;
        ep
  in
  let stations () = random_stations rng ~max_stations ~half_probability in
  let reserved = ref [] in
  let shell_ids = ref [] in
  for k = 0 to n_shells - 1 do
    let reserve_back = k < back_edges in
    let pearl = if reserve_back then Lid.Pearl.adder () else random_pearl rng in
    let id = Network.add_shell b pearl in
    shell_ids := id :: !shell_ids;
    let src0 = take_avail () in
    ignore (Network.connect b ~stations:(stations ()) ~src:src0 ~dst:(id, 0) ());
    if pearl.Lid.Pearl.n_inputs = 2 then
      if reserve_back then reserved := (id, k) :: !reserved
      else begin
        let src1 = take_avail () in
        ignore (Network.connect b ~stations:(stations ()) ~src:src1 ~dst:(id, 1) ())
      end;
    avail := (id, 0) :: !avail
  done;
  (* Keep one dangling output aside so the network always retains at least
     one sink (otherwise small instances can be swallowed whole by the back
     edges, leaving nothing observable). *)
  let reserved_for_sink =
    (* the oldest dangling output: least useful for closing loops *)
    match List.rev !avail with
    | [] -> None
    | ep :: rest_rev ->
        avail := List.rev rest_rev;
        Some ep
  in
  (* Close loops: feed each reserved input from an available output of a
     shell created no earlier than the joiner (so the edge points backward
     or sideways), falling back to any available output. *)
  List.iter
    (fun (joiner, _) ->
      let candidates =
        List.filter (fun (n, _) -> n <> joiner && n >= joiner) !avail
      in
      let pool = if candidates = [] then List.filter (fun (n, _) -> n <> joiner) !avail else candidates in
      let ep =
        match pool with
        | [] ->
            let s = Network.add_source b () in
            (s, 0)
        | _ -> List.nth pool (Random.State.int rng (List.length pool))
      in
      avail := List.filter (fun e -> e <> ep) !avail;
      ignore (Network.connect b ~stations:(stations ()) ~src:ep ~dst:(joiner, 1) ()))
    (List.rev !reserved);
  (match reserved_for_sink with Some ep -> avail := ep :: !avail | None -> ());
  (* Every dangling output feeds a sink. *)
  List.iter
    (fun ep ->
      let sink = Network.add_sink b () in
      ignore (Network.connect b ~stations:[] ~src:ep ~dst:(sink, 0) ()))
    !avail;
  Network.build b

let random_dag ~rng ~n_shells ?(max_stations = 3) ?(half_probability = 0.) () =
  random_net ~rng ~n_shells ~back_edges:0 ~max_stations ~half_probability

let random_loopy ~rng ~n_shells ?(extra_back_edges = 1) ?(max_stations = 3)
    ?(half_probability = 0.) () =
  random_net ~rng ~n_shells ~back_edges:extra_back_edges ~max_stations
    ~half_probability

(* ------------------------------------------------------------------ *)
(* NoC-scale regular families.                                         *)

(* Router pearl of the regular fabrics: 2-in/2-out, both outputs carry
   the sum of the inputs (the [tap] standard pearl, so generated specs
   round-trip through [Spec.print]/[Spec.parse]). *)
let router_pearl = Lid.Pearl.tap

(* A shared size wall for the parameterized families: the spec syntax
   exposes them to arbitrary user input, and a mistyped dimension must
   fail as a diagnostic, not as an hours-long allocation storm.  256k
   switches is 16x the 64x64 acceptance topology. *)
let max_fabric_shells = 262_144

let check_fabric what shells =
  if shells > max_fabric_shells then
    invalid_arg
      (Printf.sprintf "Generators.%s: %d shells exceed the %d-shell bound"
         what shells max_fabric_shells)

let mesh ?(stations = [ Full ]) ~n ~m () =
  if n < 1 || m < 1 then invalid_arg "Generators.mesh: need n, m >= 1";
  check_fabric "mesh" n;
  check_fabric "mesh" m;
  check_fabric "mesh" (n * m);
  let b = Network.builder () in
  (* Unidirectional (east/south) mesh, the systolic-array orientation:
     node (i,j) consumes from the west on port 0 and the north on port 1,
     produces east on port 0 and south on port 1.  All monotone paths
     between two grid points have equal hop count, so with a uniform
     relay chain per hop every reconvergence is balanced — throughput 1. *)
  let node =
    Array.init n (fun i ->
        Array.init m (fun j ->
            Network.add_shell b
              ~name:(Printf.sprintf "x%d_%d" i j)
              (router_pearl ())))
  in
  for i = 0 to n - 1 do
    let w = Network.add_source b ~name:(Printf.sprintf "w%d" i) () in
    ignore (Network.connect b ~stations ~src:(w, 0) ~dst:(node.(i).(0), 0) ())
  done;
  for j = 0 to m - 1 do
    let no = Network.add_source b ~name:(Printf.sprintf "n%d" j) () in
    ignore (Network.connect b ~stations ~src:(no, 0) ~dst:(node.(0).(j), 1) ())
  done;
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      (* east *)
      (if j + 1 < m then
         ignore
           (Network.connect b ~stations ~src:(node.(i).(j), 0)
              ~dst:(node.(i).(j + 1), 0) ())
       else
         let e = Network.add_sink b ~name:(Printf.sprintf "e%d" i) () in
         ignore
           (Network.connect b ~stations:[] ~src:(node.(i).(j), 0) ~dst:(e, 0) ()));
      (* south *)
      if i + 1 < n then
        ignore
          (Network.connect b ~stations ~src:(node.(i).(j), 1)
             ~dst:(node.(i + 1).(j), 1) ())
      else
        let s = Network.add_sink b ~name:(Printf.sprintf "s%d" j) () in
        ignore
          (Network.connect b ~stations:[] ~src:(node.(i).(j), 1) ~dst:(s, 0) ())
    done
  done;
  Network.build b

let torus ?(stations = [ Full ]) ~n ~m () =
  if n < 2 || m < 2 then invalid_arg "Generators.torus: need n, m >= 2";
  check_fabric "torus" n;
  check_fabric "torus" m;
  check_fabric "torus" (n * m);
  let b = Network.builder () in
  (* The mesh's links wrapped around: a closed system of row and column
     rings (no environment — measure shell firing rates).  Every cycle
     passes through shells, so tokens exist and no LID004 arises; each
     ring of k shells spanned by R stations caps throughput at k/(k+R). *)
  let node =
    Array.init n (fun i ->
        Array.init m (fun j ->
            Network.add_shell b
              ~name:(Printf.sprintf "x%d_%d" i j)
              (router_pearl ())))
  in
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      ignore
        (Network.connect b ~stations ~src:(node.(i).(j), 0)
           ~dst:(node.(i).((j + 1) mod m), 0) ());
      ignore
        (Network.connect b ~stations ~src:(node.(i).(j), 1)
           ~dst:(node.((i + 1) mod n).(j), 1) ())
    done
  done;
  Network.build b

let butterfly ?(stations = [ Full ]) ~k () =
  if k < 1 then invalid_arg "Generators.butterfly: need k >= 1";
  if k > 20 then invalid_arg "Generators.butterfly: k > 20 is absurd";
  let rows = 1 lsl k in
  let b = Network.builder () in
  (* The radix-2 butterfly graph on 2^k lines: stage 0 forks each input,
     stages 1..k-1 are 2-in/2-out routers, stage k joins into the sinks.
     Vertex (s, l) sends straight to (s+1, l) on port 0 and cross to
     (s+1, l xor 2^s) on port 1; every source-to-sink path crosses k+1
     shells, so the fabric is balanced — throughput 1. *)
  let stage s =
    Array.init rows (fun l ->
        let name = Printf.sprintf "b%d_%d" s l in
        if s = 0 then Network.add_shell b ~name (Lid.Pearl.fork2 ())
        else if s = k then Network.add_shell b ~name (Lid.Pearl.adder ())
        else Network.add_shell b ~name (router_pearl ()))
  in
  let stages = Array.init (k + 1) stage in
  Array.iteri
    (fun l v ->
      let src = Network.add_source b ~name:(Printf.sprintf "in%d" l) () in
      ignore (Network.connect b ~stations ~src:(src, 0) ~dst:(v, 0) ()))
    stages.(0);
  for s = 0 to k - 1 do
    let cross = 1 lsl s in
    for l = 0 to rows - 1 do
      ignore
        (Network.connect b ~stations ~src:(stages.(s).(l), 0)
           ~dst:(stages.(s + 1).(l), 0) ());
      ignore
        (Network.connect b ~stations ~src:(stages.(s).(l), 1)
           ~dst:(stages.(s + 1).(l lxor cross), 1) ())
    done
  done;
  Array.iteri
    (fun l v ->
      let snk = Network.add_sink b ~name:(Printf.sprintf "out%d" l) () in
      ignore (Network.connect b ~stations:[] ~src:(v, 0) ~dst:(snk, 0) ()))
    stages.(k);
  Network.build b

let random_soc ~rng ~n_shells ?(loop_density = 0.1) ?(reconv_density = 0.5)
    ?(max_stations = 3) ?(half_probability = 0.) () =
  if n_shells < 1 then invalid_arg "Generators.random_soc: need n_shells >= 1";
  check_fabric "random_soc" n_shells;
  if loop_density < 0. || loop_density > 1. then
    invalid_arg "Generators.random_soc: loop_density must be in [0, 1]";
  if reconv_density < 0. || reconv_density > 1. then
    invalid_arg "Generators.random_soc: reconv_density must be in [0, 1]";
  let b = Network.builder () in
  let stations () = random_stations rng ~max_stations ~half_probability in
  let back_edges =
    int_of_float (Float.round (loop_density *. float_of_int n_shells))
  in
  let back_edges = min back_edges n_shells in
  (* [avail] holds output endpoints not yet consumed. *)
  let avail = ref [] in
  let take_avail () =
    match !avail with
    | [] -> None
    | _ ->
        let i = Random.State.int rng (List.length !avail) in
        let ep = List.nth !avail i in
        avail := List.filteri (fun j _ -> j <> i) !avail;
        Some ep
  in
  let fresh_source () = (Network.add_source b (), 0) in
  let take_or_source () =
    match take_avail () with Some ep -> ep | None -> fresh_source ()
  in
  let reserved = ref [] in
  for k = 0 to n_shells - 1 do
    let reserve_back = k < back_edges in
    (* [reconv_density] sets the share of join (2-input) pearls; joins
       prefer wiring their second input to an existing dangling output,
       which is exactly a reconvergent path.  Back-edge joiners are
       always 2-input — their second input closes a loop below. *)
    let join =
      reserve_back || Random.State.float rng 1.0 < reconv_density
    in
    let pearl =
      if join then
        if Random.State.bool rng then Lid.Pearl.adder ()
        else Lid.Pearl.combine ~name:"diff" (fun a c -> a - c)
      else random_pearl_1in rng
    in
    let id = Network.add_shell b pearl in
    ignore
      (Network.connect b ~stations:(stations ()) ~src:(take_or_source ())
         ~dst:(id, 0) ());
    if pearl.Lid.Pearl.n_inputs = 2 then
      if reserve_back then reserved := (id, k) :: !reserved
      else begin
        let src1 =
          (* the reconvergence knob proper: joins pull from the existing
             fabric when allowed, a fresh source otherwise *)
          if Random.State.float rng 1.0 < reconv_density then take_or_source ()
          else fresh_source ()
        in
        ignore (Network.connect b ~stations:(stations ()) ~src:src1 ~dst:(id, 1) ())
      end;
    avail := (id, 0) :: !avail
  done;
  (* Keep one dangling output aside so the network always retains at
     least one sink, then close the loops (each back edge points backward
     or sideways so a cycle actually forms). *)
  let reserved_for_sink =
    match List.rev !avail with
    | [] -> None
    | ep :: rest_rev ->
        avail := List.rev rest_rev;
        Some ep
  in
  List.iter
    (fun (joiner, _) ->
      let candidates =
        List.filter (fun (nd, _) -> nd <> joiner && nd >= joiner) !avail
      in
      let pool =
        if candidates = [] then
          List.filter (fun (nd, _) -> nd <> joiner) !avail
        else candidates
      in
      let ep =
        match pool with
        | [] -> fresh_source ()
        | _ -> List.nth pool (Random.State.int rng (List.length pool))
      in
      avail := List.filter (fun e -> e <> ep) !avail;
      ignore (Network.connect b ~stations:(stations ()) ~src:ep ~dst:(joiner, 1) ()))
    (List.rev !reserved);
  (match reserved_for_sink with Some ep -> avail := ep :: !avail | None -> ());
  List.iter
    (fun ep ->
      let sink = Network.add_sink b () in
      ignore (Network.connect b ~stations:[] ~src:ep ~dst:(sink, 0) ()))
    !avail;
  Network.build b
