module Net = Network

type module_id = Net.node_id

type placed = { x : float; y : float }

type t = {
  builder : Net.builder;
  mutable coords : (module_id * placed) list;
  mutable connections : ((module_id * int) * (module_id * int)) list; (* reversed *)
}

let create () = { builder = Net.builder (); coords = []; connections = [] }

let place t id ~x ~y =
  t.coords <- (id, { x; y }) :: t.coords;
  id

let add_shell t ?name ~x ~y pearl =
  place t (Net.add_shell t.builder ?name pearl) ~x ~y

let add_source t ?name ?start ?pattern ~x ~y () =
  place t (Net.add_source t.builder ?name ?start ?pattern ()) ~x ~y

let add_sink t ?name ?pattern ~x ~y () =
  place t (Net.add_sink t.builder ?name ?pattern ()) ~x ~y

let connect t ~src ~dst = t.connections <- (src, dst) :: t.connections

type channel_report = {
  src_name : string;
  dst_name : string;
  distance : float;
  wire_cycles : int;
  stations : Lid.Relay_station.kind list;
  profile : Lid.Latency.profile option;
}

type report = {
  reach : float;
  channels : channel_report list;
  full_stations : int;
  half_stations : int;
}

let wire_plans ~reach t =
  if reach <= 0. then invalid_arg "Floorplan.synthesize: reach must be positive";
  let coord id =
    match List.assoc_opt id t.coords with
    | Some p -> p
    | None -> invalid_arg "Floorplan: module without coordinates"
  in
  List.rev_map
    (fun (((sn, _) as src), ((dn, _) as dst)) ->
      let a = coord sn and b = coord dn in
      let distance = abs_float (a.x -. b.x) +. abs_float (a.y -. b.y) in
      let wire_cycles = max 1 (int_of_float (ceil (distance /. reach))) in
      (src, dst, distance, wire_cycles))
    t.connections

let synthesize ~reach t =
  let plans = wire_plans ~reach t in
  let channels = ref [] in
  List.iter
    (fun ((src, dst, distance, wire_cycles) :
           (module_id * int) * (module_id * int) * float * int) ->
      let stations =
        if wire_cycles > 1 then
          List.init (wire_cycles - 1) (fun _ -> Lid.Relay_station.Full)
        else [ Lid.Relay_station.Half ]
      in
      channels := (src, dst, distance, wire_cycles, stations) :: !channels)
    plans;
  let channels = List.rev !channels in
  List.iter
    (fun (src, dst, _, _, stations) ->
      ignore (Net.connect t.builder ~stations ~src ~dst ()))
    channels;
  let net = Net.build t.builder in
  (* single-cycle channels into sinks do not need their half station; strip
     them now that we can inspect node kinds *)
  let net =
    List.fold_left
      (fun net (e : Net.edge) ->
        match ((Net.node net e.dst.node).kind, e.stations) with
        | Net.Sink _, [ Lid.Relay_station.Half ] -> Net.with_stations net e.id []
        | _ -> net)
      net (Net.edges net)
  in
  let channel_reports =
    List.map2
      (fun (_, _, distance, wire_cycles, _) (e : Net.edge) ->
        {
          src_name = (Net.node net e.src.node).name;
          dst_name = (Net.node net e.dst.node).name;
          distance;
          wire_cycles;
          stations = e.stations;
          profile = None;
        })
      channels (Net.edges net)
  in
  let count k =
    List.fold_left
      (fun acc c -> acc + List.length (List.filter (( = ) k) c.stations))
      0 channel_reports
  in
  ( net,
    {
      reach;
      channels = channel_reports;
      full_stations = count Lid.Relay_station.Full;
      half_stations = count Lid.Relay_station.Half;
    } )

let synthesize_latency ~reach ?(pitch = 100) t =
  if pitch <= 0 then
    invalid_arg "Floorplan.synthesize_latency: pitch must be positive";
  let plans = wire_plans ~reach t in
  (* A [wire_cycles]-cycle wire becomes ONE memory element plus a
     [Distance] latency profile carrying the remaining [wire_cycles - 1]
     cycles (the entrance gate meters the launches), instead of
     [wire_cycles - 1] pipelining stations.  The profile's integer
     [length] is the Manhattan distance rescaled to [pitch] units per
     clock, then clamped into ((wire_cycles-1)*pitch, wire_cycles*pitch]
     so float rounding can never shift the derived delay off the
     geometric cycle count. *)
  let profile_of distance wire_cycles =
    if wire_cycles <= 1 then None
    else
      let scaled =
        int_of_float (Float.round (distance /. reach *. float_of_int pitch))
      in
      let length =
        min (wire_cycles * pitch) (max (((wire_cycles - 1) * pitch) + 1) scaled)
      in
      Some (Lid.Latency.Distance { length; pitch })
  in
  let channels =
    List.rev
      (List.rev_map
         (fun (src, dst, distance, wire_cycles) ->
           let stations =
             if wire_cycles > 1 then [ Lid.Relay_station.Full ]
             else [ Lid.Relay_station.Half ]
           in
           (src, dst, distance, wire_cycles, stations))
         plans)
  in
  List.iter
    (fun (src, dst, distance, wire_cycles, stations) ->
      ignore
        (Net.connect t.builder ~stations
           ?latency:(profile_of distance wire_cycles)
           ~src ~dst ()))
    channels;
  let net = Net.build t.builder in
  (* as in [synthesize]: single-cycle channels into sinks do not need
     their half station *)
  let net =
    List.fold_left
      (fun net (e : Net.edge) ->
        match ((Net.node net e.dst.node).kind, e.stations) with
        | Net.Sink _, [ Lid.Relay_station.Half ] -> Net.with_stations net e.id []
        | _ -> net)
      net (Net.edges net)
  in
  let channel_reports =
    List.map2
      (fun (_, _, distance, wire_cycles, _) (e : Net.edge) ->
        {
          src_name = (Net.node net e.src.node).name;
          dst_name = (Net.node net e.dst.node).name;
          distance;
          wire_cycles;
          stations = e.stations;
          profile = e.latency;
        })
      channels (Net.edges net)
  in
  let count k =
    List.fold_left
      (fun acc c -> acc + List.length (List.filter (( = ) k) c.stations))
      0 channel_reports
  in
  ( net,
    {
      reach;
      channels = channel_reports;
      full_stations = count Lid.Relay_station.Full;
      half_stations = count Lid.Relay_station.Half;
    } )

let pp_report fmt r =
  Format.fprintf fmt "reach %.2f: %d full + %d half stations@." r.reach
    r.full_stations r.half_stations;
  List.iter
    (fun c ->
      Format.fprintf fmt "  %-10s -> %-10s dist %6.2f  %d cycle(s)  [%s]%s@."
        c.src_name c.dst_name c.distance c.wire_cycles
        (String.concat " "
           (List.map Lid.Relay_station.kind_to_string c.stations))
        (match c.profile with
        | None -> ""
        | Some p -> "  latency=" ^ Lid.Latency.to_string p))
    r.channels
