(** LID system graphs.

    A network is a directed (possibly cyclic) graph of synchronous
    processes, exactly the object the paper associates with a system:
    shells (wrapping pearls), environment sources and sinks, and channels,
    each channel carrying an ordered chain of relay stations.

    The builder enforces the paper's minimum-memory theorem: since a shell
    does not store incoming stop signals, every channel between two
    shell-like producers (shells or sources) must contain at least one
    (half or full) relay station.  [~allow_direct:true] lifts the check —
    used by the test suite to demonstrate what goes wrong without it. *)

type node_id = int
type edge_id = int

type node_kind =
  | Shell of Lid.Pearl.t
  | Source of { pattern : Pattern.t; start : int }
      (** emits [start, start+1, ...] on the cycles where [pattern] is
          active (and the protocol lets it) *)
  | Sink of { pattern : Pattern.t }
      (** asserts stop on the cycles where [pattern] is active *)

type node = { id : node_id; name : string; kind : node_kind }

type endpoint = { node : node_id; port : int }

type edge = {
  id : edge_id;
  src : endpoint;
  dst : endpoint;
  stations : Lid.Relay_station.kind list;  (** producer-to-consumer order *)
  latency : Lid.Latency.profile option;
      (** extra traversal delay of the channel's wire ([None] = the
          paper's fixed unit-latency channel) *)
}

type t

(** {1 Building} *)

type builder

val builder : unit -> builder
val add_shell : builder -> ?name:string -> Lid.Pearl.t -> node_id

val add_source :
  builder -> ?name:string -> ?start:int -> ?pattern:Pattern.t -> unit -> node_id

val add_sink : builder -> ?name:string -> ?pattern:Pattern.t -> unit -> node_id

val connect :
  builder ->
  ?stations:Lid.Relay_station.kind list ->
  ?latency:Lid.Latency.profile ->
  src:node_id * int ->
  dst:node_id * int ->
  unit ->
  edge_id
(** [connect b ~stations ~src:(n, port) ~dst:(m, port') ()] adds a channel.
    [stations] defaults to [[Full]]; [latency] (default none) gives the
    channel a variable-latency wire (see {!delay_table}). *)

val build : ?allow_direct:bool -> builder -> t
(** Validates and freezes the network.  Raises [Invalid_argument] when a
    port is unconnected or doubly connected, a port index is out of range,
    or (unless [allow_direct]) a shell/source output reaches a shell input
    through a station-less channel. *)

(** {1 Accessors} *)

val nodes : t -> node list
val edges : t -> edge list
val node : t -> node_id -> node
val edge : t -> edge_id -> edge
val n_nodes : t -> int
val n_edges : t -> int

val in_edges : t -> node_id -> edge array
(** Indexed by destination port. *)

val out_edges : t -> node_id -> edge array
(** Indexed by source port. *)

val shells : t -> node list
val sources : t -> node list
val sinks : t -> node list

val n_inputs_of : t -> node_id -> int
val n_outputs_of : t -> node_id -> int

val station_count : t -> Lid.Relay_station.kind -> int

val retx_count : t -> int
(** Retransmitting stations of any depth, network-wide. *)

val env_period : t -> int
(** Least common multiple of all source/sink pattern periods. *)

(** {1 Dynamic-LID channels}

    A channel's latency profile is elaborated one of two ways: if the
    relay chain contains a retransmitting station, the profile drives the
    {e first} such station's internal data hop (the station spans the
    unreliable wire); otherwise the engines place an {e entrance gate} —
    a one-token register delaying each token by the profile's schedule —
    between the producer and the chain. *)

val delay_table : t -> edge_id -> int array option
(** The channel's compiled per-launch delay schedule
    ({!Lid.Latency.table}), or [None] for a fixed-latency channel. *)

val edge_is_gated : t -> edge_id -> bool
(** The channel has a latency profile and no retransmitting station, so
    the engines elaborate an entrance gate for it. *)

val has_dynamics : t -> bool
(** Some channel has a latency profile or a retransmitting station —
    engines must take the dynamic (boxed-state) paths and the bit-sliced
    lane fabric does not apply. *)

val pp_summary : Format.formatter -> t -> unit

(** {1 Surgery} *)

val with_stations : t -> edge_id -> Lid.Relay_station.kind list -> t
(** A copy of the network with one channel's relay chain replaced (used by
    path equalization and deadlock cures). *)

val with_latency : t -> edge_id -> Lid.Latency.profile option -> t
(** A copy of the network with one channel's latency profile replaced
    (used by jitter sweeps). *)
