type origin =
  | O_internal
  | O_station of Network.edge_id * int * [ `Forward | `Backward ]
  | O_buffer of Network.edge_id * [ `Forward | `Backward ]

type edge = {
  src : int;
  dst : int;
  tokens : int;
  latency : int;
  origin : origin;
}

type t = { n : int; edges : edge array; labels : string array }

exception Zero_latency_cycle of string

(* ------------------------------------------------------------------ *)
(* Construction.                                                       *)

(* Each channel is a chain of storage stages between the producer's and the
   consumer's fire events: first the producer's output buffer, then each
   relay station.  A stage spans two chain nodes with a forward edge
   (initial tokens, forward latency) and a backward edge (bubbles, stop
   latency); consecutive stages share a node, so no artificial zero-weight
   wire cycles appear.  The node after the last stage is the consumer's
   fire node itself. *)
let of_network net =
  let module Net = Network in
  let labels = ref [] in
  let count = ref 0 in
  let fresh label =
    let id = !count in
    incr count;
    labels := label :: !labels;
    id
  in
  let nodes = Array.of_list (Net.nodes net) in
  let fire = Array.map (fun (n : Net.node) -> fresh (n.name ^ ".fire")) nodes in
  let edges = ref [] in
  let add src dst tokens latency origin =
    edges := { src; dst; tokens; latency; origin } :: !edges
  in
  (* A stage between nodes [a] and [b]: forward (tokens, latency), backward
     (bubbles, stop latency). *)
  let stage a b ~tokens ~latency ~bubbles ~stop_latency ~fwd ~bwd =
    add a b tokens latency fwd;
    add b a bubbles stop_latency bwd
  in
  List.iter
    (fun (e : Net.edge) ->
      let m = List.length e.stations in
      let src_name = (Net.node net e.src.node).name in
      let mid_label j = Printf.sprintf "%s.e%d.%d" src_name e.id j in
      (* chain nodes: fire_src, after-buffer, after-station_1, ...,
         after-station_m = fire_dst *)
      let chain_node j =
        if j = 0 then fire.(e.src.node)
        else if j = m + 1 then fire.(e.dst.node)
        else fresh (mid_label j)
      in
      let prev = ref (chain_node 0) in
      for j = 1 to m + 1 do
        let next = chain_node j in
        (if j = 1 then
           (* the producer's output buffer slot: starts full, combinational
              back-pressure *)
           stage !prev next ~tokens:1 ~latency:1 ~bubbles:0 ~stop_latency:0
             ~fwd:(O_buffer (e.id, `Forward))
             ~bwd:(O_buffer (e.id, `Backward))
         else
           let fwd = O_station (e.id, j - 2, `Forward) in
           let bwd = O_station (e.id, j - 2, `Backward) in
           match List.nth e.stations (j - 2) with
           | Lid.Relay_station.Full ->
               stage !prev next ~tokens:0 ~latency:1 ~bubbles:2 ~stop_latency:1
                 ~fwd ~bwd
           | Lid.Relay_station.Half ->
               stage !prev next ~tokens:0 ~latency:0 ~bubbles:1 ~stop_latency:1
                 ~fwd ~bwd
           | Lid.Relay_station.Retx { depth } ->
               (* store-and-forward over the wire hop plus a replay buffer
                  of [depth] slots: 2-cycle forward latency, depth+1 bubbles *)
               stage !prev next ~tokens:0 ~latency:2 ~bubbles:(depth + 1)
                 ~stop_latency:1 ~fwd ~bwd);
        prev := next
      done)
    (Net.edges net);
  {
    n = !count;
    edges = Array.of_list (List.rev !edges);
    labels = Array.of_list (List.rev !labels);
  }

(* ------------------------------------------------------------------ *)
(* Zero-latency cycle detection (combinational loops).                 *)

let check_zero_latency_cycles t =
  let adj = Array.make t.n [] in
  Array.iter
    (fun e -> if e.latency = 0 then adj.(e.src) <- e.dst :: adj.(e.src))
    t.edges;
  let color = Array.make t.n 0 in
  let rec visit v =
    if color.(v) = 1 then
      raise
        (Zero_latency_cycle
           (Printf.sprintf "latency-free cycle through %s" t.labels.(v)));
    if color.(v) = 0 then begin
      color.(v) <- 1;
      List.iter visit adj.(v);
      color.(v) <- 2
    end
  in
  for v = 0 to t.n - 1 do
    visit v
  done

(* ------------------------------------------------------------------ *)
(* Negative-cycle oracle: does some cycle satisfy
   [sum tokens * q - p * sum latency < 0], i.e. ratio < p/q ?           *)

let bellman_ford t ~p ~q =
  let dist = Array.make t.n 0 in
  let pred = Array.make t.n (-1) in
  let weight e = (e.tokens * q) - (p * e.latency) in
  let changed = ref true in
  let pass = ref 0 in
  let last_updated = ref (-1) in
  while !changed && !pass <= t.n do
    changed := false;
    Array.iteri
      (fun ei e ->
        let w = weight e in
        if dist.(e.src) + w < dist.(e.dst) then begin
          dist.(e.dst) <- dist.(e.src) + w;
          pred.(e.dst) <- ei;
          last_updated := e.dst;
          changed := true
        end)
      t.edges;
    incr pass
  done;
  if !changed then Some (pred, !last_updated) else None

let has_negative_cycle t ~p ~q = bellman_ford t ~p ~q <> None

(* Extract one cycle from the predecessor structure after a negative cycle
   was detected. *)
let extract_cycle t (pred, last_updated) =
  (* [last_updated] was relaxed in the overflow pass, so walking its
     predecessor chain n times is guaranteed to land on the cycle. *)
  let start =
    let x = ref last_updated in
    for _ = 1 to t.n do
      x := t.edges.(pred.(!x)).src
    done;
    !x
  in
  let rec collect v acc =
    let e = t.edges.(pred.(v)) in
    if e.src = start then e :: acc else collect e.src (e :: acc)
  in
  collect start []

(* ------------------------------------------------------------------ *)
(* Stern-Brocot search for the minimum cycle ratio.                    *)

let total_latency t = Array.fold_left (fun acc e -> acc + e.latency) 0 t.edges

(* Largest k in [1, cap] with [pred k]; requires [pred 1]. *)
let gallop pred cap =
  let rec double k = if 2 * k <= cap && pred (2 * k) then double (2 * k) else k in
  let lo = double 1 in
  let rec binary lo hi =
    (* invariant: pred lo, not (pred hi) or hi > cap *)
    if lo + 1 >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if mid <= cap && pred mid then binary mid hi else binary lo mid
  in
  binary lo (min (2 * lo) (cap + 1))

let search_ratio t =
  let lmax = max 1 (total_latency t) in
  let neg p q = has_negative_cycle t ~p ~q in
  if not (neg 1 1) then (1, 1)
  else begin
    (* Invariant: not (neg a b) — T* >= a/b;  neg c d — T* < c/d. *)
    let rec descend (a, b) (c, d) =
      if b + d > lmax then (a, b)
      else if neg (a + c) (b + d) then begin
        (* move hi left towards lo: hi_k = (c + k*a, d + k*b) *)
        let cap = 1 + ((lmax - d) / max b 1) + 1 in
        let k = gallop (fun k -> neg (c + (k * a)) (d + (k * b))) cap in
        descend (a, b) (c + (k * a), d + (k * b))
      end
      else begin
        (* move lo right towards hi: lo_k = (a + k*c, b + k*d) *)
        let cap = 1 + ((lmax - b) / max d 1) + 1 in
        let k = gallop (fun k -> not (neg (a + (k * c)) (b + (k * d)))) cap in
        descend (a + (k * c), b + (k * d)) (c, d)
      end
    in
    descend (0, 1) (1, 1)
  end

let critical_cycle_edges t =
  check_zero_latency_cycles t;
  let p, q = search_ratio t in
  if (p, q) = (1, 1) then ((1, 1), [])
  else begin
    (* Probe strictly above T* but below every other representable ratio. *)
    let lmax = max 1 (total_latency t) in
    let p' = (p * 2 * lmax) + 1 and q' = q * 2 * lmax in
    match bellman_ford t ~p:p' ~q:q' with
    | None ->
        (* Cannot happen: T* < p'/q' implies a negative cycle. *)
        ((p, q), [])
    | Some witness ->
        let cycle = extract_cycle t witness in
        let tok = List.fold_left (fun acc e -> acc + e.tokens) 0 cycle in
        let lat = List.fold_left (fun acc e -> acc + e.latency) 0 cycle in
        ((tok, lat), cycle)
  end

let min_cycle_ratio t = fst (critical_cycle_edges t)

let critical_cycle t =
  match snd (critical_cycle_edges t) with
  | [] -> []
  | edges -> List.map (fun e -> e.src) edges

let critical_cycle_origins t =
  let ratio, edges = critical_cycle_edges t in
  (ratio, List.map (fun e -> e.origin) edges)

let throughput t =
  let tok, lat = min_cycle_ratio t in
  if lat = 0 then 1.0 else min 1.0 (float_of_int tok /. float_of_int lat)

let throughput_bound net = throughput (of_network net)

let pp fmt t =
  Format.fprintf fmt "elastic graph: %d nodes, %d edges@." t.n
    (Array.length t.edges);
  Array.iter
    (fun e ->
      Format.fprintf fmt "  %s -> %s (t=%d l=%d)@." t.labels.(e.src)
        t.labels.(e.dst) e.tokens e.latency)
    t.edges
