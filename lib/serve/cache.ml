type 'a entry = { mutable value : 'a; mutable stamp : int }

type 'a t = {
  capacity : int;
  table : (string, 'a entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  {
    capacity = max 1 capacity;
    table = Hashtbl.create 64;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
      e.stamp <- tick t;
      t.hits <- t.hits + 1;
      Some e.value
  | None ->
      t.misses <- t.misses + 1;
      None

(* O(n) victim scan; capacities are small (hundreds) and eviction only
   happens once the cache is full, so this never shows up in profiles. *)
let evict_one t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, s) when s <= e.stamp -> acc
        | _ -> Some (k, e.stamp))
      t.table None
  in
  match victim with Some (k, _) -> Hashtbl.remove t.table k | None -> ()

let set t key value =
  match Hashtbl.find_opt t.table key with
  | Some e ->
      e.value <- value;
      e.stamp <- tick t
  | None ->
      if Hashtbl.length t.table >= t.capacity then evict_one t;
      Hashtbl.replace t.table key { value; stamp = tick t }

let take t key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
      Hashtbl.remove t.table key;
      t.hits <- t.hits + 1;
      Some e.value
  | None ->
      t.misses <- t.misses + 1;
      None

let length t = Hashtbl.length t.table
let hits t = t.hits
let misses t = t.misses
