type t = {
  jobs : int;
  results : (Lidjson.t, string) result Cache.t;
  engines : Skeleton.Packed.t Cache.t;
  lock : Mutex.t;  (* serializes batches: caches are not thread-safe *)
  mutable batches : int;
  mutable dup_hits : int;
}

let create ?jobs ?(result_capacity = 256) ?(engine_capacity = 32) () =
  let jobs =
    match jobs with
    | Some j when j >= 1 -> j
    | _ -> Campaign.Parallel.default_jobs ()
  in
  {
    jobs;
    results = Cache.create ~capacity:result_capacity;
    engines = Cache.create ~capacity:engine_capacity;
    lock = Mutex.create ();
    batches = 0;
    dup_hits = 0;
  }

let jobs t = t.jobs

(* In-batch duplicates are answered without touching the cache, so the
   lifetime hit count folds a per-daemon duplicate counter into the
   cache's own. *)
let result_cache_hits t = Cache.hits t.results + t.dup_hits
let result_cache_misses t = Cache.misses t.results

type batch_stats = {
  batch : int;
  requests : int;
  hits : int;
  misses : int;
  errors : int;
  cone_reuse : bool;
  reused_compilation : string option;
}

(* ------------------------------------------------------------------ *)
(* Responses.                                                           *)

let error_response id msg =
  Lidjson.Obj
    [
      ("id", id); ("ok", Lidjson.Bool false); ("error", Lidjson.String msg);
    ]

let response t (p : Handler.prepared) outcome =
  match outcome with
  | Ok payload ->
      Lidjson.Obj
        [
          ("id", p.Handler.request.Request.id);
          ("ok", Lidjson.Bool true);
          ("topology_hash", Lidjson.String p.Handler.hash_hex);
          ("jobs", Lidjson.Int t.jobs);
          ("result", payload);
        ]
  | Error msg ->
      Lidjson.Obj
        [
          ("id", p.Handler.request.Request.id);
          ("ok", Lidjson.Bool false);
          ("topology_hash", Lidjson.String p.Handler.hash_hex);
          ("error", Lidjson.String msg);
        ]

(* ------------------------------------------------------------------ *)
(* Batch processing.                                                    *)

type slot =
  | Bad of Lidjson.t * string  (* echoed id, error *)
  | Ready of Handler.prepared

let process_locked t reqs =
  t.batches <- t.batches + 1;
  (* phase 1: parse + canonicalize in parallel — pure per request *)
  let slots =
    Campaign.Parallel.map ~jobs:t.jobs
      (fun j ->
        match Request.of_json j with
        | Error m ->
            Bad (Option.value (Lidjson.member "id" j) ~default:Lidjson.Null, m)
        | Ok req -> (
            match Handler.prepare req with
            | Ok p -> Ready p
            | Error m -> Bad (req.Request.id, m)))
      reqs
  in
  (* phase 2: sequential cache partition; in-batch duplicates of a
     pending key count as hits and are answered by its one computation *)
  let answers = Hashtbl.create 16 in
  let pending = Hashtbl.create 16 in
  let work = ref [] in
  let hits = ref 0 and misses = ref 0 and errors = ref 0 in
  let reused = ref None in
  List.iter
    (function
      | Bad _ -> incr errors
      | Ready p ->
          let key = p.Handler.key in
          if Hashtbl.mem answers key || Hashtbl.mem pending key then begin
            incr hits;
            t.dup_hits <- t.dup_hits + 1
          end
          else (
            match Cache.find t.results key with
            | Some outcome ->
                incr hits;
                Hashtbl.replace answers key outcome
            | None ->
                incr misses;
                Hashtbl.replace pending key ();
                let engine =
                  if not (Handler.wants_engine p) then None
                  else
                    match Cache.take t.engines (Handler.engine_key p) with
                    | Some e -> Some (Handler.Pooled e)
                    | None -> (
                        (* no engine for the edited topology; resume one
                           compiled for its unedited base instead of
                           recompiling.  [find], not [take]: resume only
                           reads the base's immutable compiled structure,
                           so the base engine stays in the pool. *)
                        match Handler.base_engine_key p with
                        | None -> None
                        | Some bk -> (
                            match Cache.find t.engines bk with
                            | Some base ->
                                if !reused = None then
                                  reused := Handler.base_hash p;
                                Some (Handler.Resume base)
                            | None -> None))
                in
                work := (p, engine) :: !work))
    slots;
  (* phase 3: compute the unique misses in parallel — each item owns
     its engine (taken from the pool or created locally) exclusively *)
  let computed =
    Campaign.Parallel.map ~jobs:t.jobs
      (fun ((p : Handler.prepared), engine) ->
        let outcome, engine' = Handler.compute ?engine p in
        (p, outcome, engine'))
      (List.rev !work)
  in
  (* phase 4: sequential cache insertion and response assembly *)
  List.iter
    (fun ((p : Handler.prepared), outcome, engine) ->
      Hashtbl.replace answers p.Handler.key outcome;
      Cache.set t.results p.Handler.key outcome;
      match engine with
      | Some e ->
          Skeleton.Packed.reset e;
          Cache.set t.engines (Handler.engine_key p) e
      | None -> ())
    computed;
  let responses =
    List.map
      (function
        | Bad (id, m) -> error_response id m
        | Ready p -> response t p (Hashtbl.find answers p.Handler.key))
      slots
  in
  ( responses,
    {
      batch = t.batches;
      requests = List.length reqs;
      hits = !hits;
      misses = !misses;
      errors = !errors;
      cone_reuse = !reused <> None;
      reused_compilation = !reused;
    } )

let process t reqs = Mutex.protect t.lock (fun () -> process_locked t reqs)

let stats_json t (s : batch_stats) =
  Lidjson.to_string
    (Lidjson.Obj
       ([
          ("batch", Lidjson.Int s.batch);
          ("requests", Lidjson.Int s.requests);
          ("hits", Lidjson.Int s.hits);
          ("misses", Lidjson.Int s.misses);
          ("errors", Lidjson.Int s.errors);
          ("jobs", Lidjson.Int t.jobs);
          ("cone_reuse", Lidjson.Bool s.cone_reuse);
        ]
       @
       match s.reused_compilation with
       | Some h -> [ ("reused_compilation", Lidjson.String h) ]
       | None -> []))

(* ------------------------------------------------------------------ *)
(* Framing.                                                             *)

let serve_channel ?(stats = false) t ic oc =
  let emit_stats s =
    if stats then Printf.eprintf "%s\n%!" (stats_json t s)
  in
  let rec loop () =
    match In_channel.input_line ic with
    | None -> ()
    | Some line ->
        let trimmed = String.trim line in
        if trimmed = "" then loop ()
        else begin
          (match Lidjson.parse trimmed with
          | Error m ->
              output_string oc
                (Lidjson.to_string
                   (error_response Lidjson.Null ("bad request line: " ^ m)))
          | Ok (Lidjson.List items) ->
              let responses, s = process t items in
              emit_stats s;
              output_string oc (Lidjson.to_string (Lidjson.List responses))
          | Ok j ->
              let responses, s = process t [ j ] in
              emit_stats s;
              output_string oc (Lidjson.to_string (List.hd responses)));
          output_char oc '\n';
          flush oc;
          loop ()
        end
  in
  loop ()

let serve_socket ?stats ?connections t path =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (try Unix.unlink path with Unix.Unix_error (_, _, _) | Sys_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock (max 8 t.jobs);
  (* One handler domain per connection, at most [t.jobs] live at once:
     the accept loop blocks on the condvar when the bound is reached.
     Handlers only read lines and call [process] (which serializes on
     the daemon lock), so responses per connection are byte-identical
     to the sequential server's.  Finished domains flag themselves and
     are joined opportunistically from the accept loop. *)
  let lock = Mutex.create () in
  let cond = Condition.create () in
  let active = ref 0 in
  let handlers = ref [] in
  let reap ~all =
    handlers :=
      List.filter
        (fun (fin, d) ->
          if all || Atomic.get fin then (
            Domain.join d;
            false)
          else true)
        !handlers
  in
  let served = ref 0 in
  let more () = match connections with Some n -> !served < n | None -> true in
  while more () do
    let fd, _ = Unix.accept sock in
    incr served;
    Mutex.lock lock;
    while !active >= t.jobs do
      Condition.wait cond lock
    done;
    incr active;
    Mutex.unlock lock;
    reap ~all:false;
    let fin = Atomic.make false in
    let d =
      Domain.spawn (fun () ->
          let ic = Unix.in_channel_of_descr fd
          and oc = Unix.out_channel_of_descr fd in
          (try serve_channel ?stats t ic oc
           with Sys_error _ | Unix.Unix_error (_, _, _) | End_of_file -> ());
          (try close_out oc
           with Sys_error _ | Unix.Unix_error (_, _, _) -> ());
          Mutex.lock lock;
          decr active;
          Condition.signal cond;
          Mutex.unlock lock;
          Atomic.set fin true)
    in
    handlers := (fin, d) :: !handlers
  done;
  (* only reachable with [connections]: drain and release the socket *)
  reap ~all:true;
  (try Unix.close sock with Unix.Unix_error (_, _, _) -> ());
  try Unix.unlink path with Unix.Unix_error (_, _, _) | Sys_error _ -> ()
