(** E19 — amortized serve throughput against per-invocation analysis.

    The experiment the daemon exists for: a request stream that revisits
    the same NoC topologies (as a regression harness or design sweep
    does) is answered once per unique request from the memo cache, where
    the one-shot CLI pays the full parse + compile + analyze cost every
    time.  {!run} replays one stream two ways — a fresh daemon per
    request (nothing amortized, the one-shot cost model) against one
    daemon across the stream — and asserts the responses byte-identical
    before reporting the speedup. *)

type result = {
  requests : int;  (** total requests in the stream *)
  unique : int;  (** distinct memo-cache keys among them *)
  rounds : int;  (** times the base workload repeats in the stream *)
  jobs : int;
  per_request_s : float;  (** fresh daemon per request, batches of one *)
  amortized_s : float;  (** one daemon, one batch per round *)
  speedup : float;  (** [per_request_s /. amortized_s] *)
  hits : int;  (** memo-cache hits of the amortized run *)
  misses : int;
  identical : bool;  (** every response byte-identical across both runs *)
}

val run : ?quick:bool -> ?jobs:int -> unit -> result
(** [quick] (default false) shrinks the topologies and the round count
    to CI-smoke size.  [jobs] defaults to
    {!Campaign.Parallel.default_jobs} and is used by both runs, so the
    responses' [jobs] field cannot differ between them. *)

val pp : Format.formatter -> result -> unit
val to_json : result -> string
