(** Serve-protocol requests.

    One request is one JSON object naming a topology and an analysis:

    {v
    {"id": 7, "spec": "source s\n...", "analysis": "lint"}
    {"id": 8, "generate": "mesh 8 8", "analysis": "throughput"}
    {"generate": "soc 40 seed=3", "analysis": "inject", "cycles": 0}
    v}

    - [id]: any JSON value, echoed verbatim in the response (optional;
      defaults to null).
    - topology: exactly one of [spec] (inline description text, the
      {!Topology.Spec} format) or [generate] (the arguments of a
      [generate] line, e.g. ["torus 6 6 stations=full,full"]).
    - [analysis]: ["lint"], ["verify"], ["throughput"], ["equalize"] or
      ["inject"].
    - [flavour]: ["optimized"] (default) or ["original"].
    - analysis parameters, all optional: [gate] (lint, default true);
      [max_cycles], [signature_capacity] (throughput, 0 or absent =
      engine defaults); [seed], [cycles], [sites], [per_site] (inject,
      defaults 1, 0 = derive from the fault-free steady state, 0 =
      exhaustive, 1).

    An optional [edits] member patches channel latency profiles before
    the analysis, without resending a whole new spec:

    {v
    {"spec": "...", "analysis": "throughput",
     "edits": [{"channel": "u.0->v.0", "latency": "jitter:0:3:7"},
               {"channel": "v.0->w.0", "latency": "none"}]}
    v}

    [channel] is the label {!Topology.Spec} channels print as
    (["SRC.PORT->DST.PORT"]); [latency] is the {!Lid.Latency.of_string}
    syntax, or ["none"] to strip the profile.  Edits are shape
    preserving — stations and wiring stay put — which is what lets the
    daemon {!Skeleton.Packed.resume} a pooled engine of the unedited
    topology instead of recompiling.

    Unknown object members are ignored (forward compatibility); wrong
    member types and missing/ambiguous topology are errors. *)

type analysis =
  | Lint of { gate : bool }
  | Verify
      (** compositional assume-guarantee discharge ({!Lint.Compose}) *)
  | Throughput of { max_cycles : int option; signature_capacity : int option }
  | Equalize
  | Inject of { seed : int; cycles : int; sites : int; per_site : int }

type t = {
  id : Lidjson.t;  (** echoed in the response; [Null] when absent *)
  spec : string;  (** description text, possibly a [generate] line *)
  flavour : Lid.Protocol.flavour;
  analysis : analysis;
  edits : (string * Lid.Latency.profile option) list;
      (** channel-label to latency-profile patches, request order;
          [None] strips the channel's profile *)
}

val of_json : Lidjson.t -> (t, string) result

val analysis_key : t -> string
(** Deterministic rendering of analysis + flavour + every parameter —
    the non-topology half of the memo-cache key. *)
