type prepared = {
  request : Request.t;
  net : Topology.Network.t;
  canonical : string;
  hash_hex : string;
  key : string;
  edits : (Topology.Network.edge_id * Lid.Latency.profile option) list;
  base_canonical : string option;
}

(* Map the request's channel labels ("SRC.P->DST.P", the label channels
   print as) onto the parsed topology's edge ids. *)
let resolve_edits net (edits : (string * Lid.Latency.profile option) list) =
  match edits with
  | [] -> Ok []
  | _ ->
      let label (e : Topology.Network.edge) =
        Printf.sprintf "%s.%d->%s.%d"
          (Topology.Network.node net e.src.node).name e.src.port
          (Topology.Network.node net e.dst.node).name e.dst.port
      in
      let ids = Hashtbl.create 16 in
      List.iter
        (fun (e : Topology.Network.edge) -> Hashtbl.replace ids (label e) e.id)
        (Topology.Network.edges net);
      List.fold_left
        (fun acc (chan, profile) ->
          match acc with
          | Error _ as e -> e
          | Ok resolved -> (
              match Hashtbl.find_opt ids chan with
              | Some id -> Ok ((id, profile) :: resolved)
              | None ->
                  Error
                    (Printf.sprintf
                       "edit names unknown channel %S (want \"SRC.PORT->\
                        DST.PORT\")"
                       chan)))
        (Ok []) edits
      |> Result.map List.rev

let prepare (request : Request.t) =
  let allow_direct =
    match request.analysis with
    | Request.Lint _ | Request.Verify -> true
    | _ -> false
  in
  match Topology.Spec.parse ~allow_direct request.spec with
  | Error m -> Error m
  | Ok base -> (
      match resolve_edits base request.edits with
      | Error m -> Error m
      | Ok edits -> (
          match
            List.fold_left
              (fun n (id, p) -> Topology.Network.with_latency n id p)
              base edits
          with
          | exception Invalid_argument m -> Error m
          | net ->
              let canonical = Topo_hash.canonical net in
              Ok
                {
                  request;
                  net;
                  canonical;
                  hash_hex = Topo_hash.hex canonical;
                  key = Request.analysis_key request ^ "\n" ^ canonical;
                  edits;
                  base_canonical =
                    (if edits = [] then None
                     else Some (Topo_hash.canonical base));
                }))

let wants_engine p =
  match p.request.analysis with
  | Request.Throughput _ | Request.Inject _ -> true
  | Request.Lint _ | Request.Verify | Request.Equalize -> false

let engine_key_of flavour canonical =
  (match flavour with
  | Lid.Protocol.Optimized -> "optimized\n"
  | Lid.Protocol.Original -> "original\n")
  ^ canonical

let engine_key p = engine_key_of p.request.flavour p.canonical

let base_engine_key p =
  Option.map (engine_key_of p.request.flavour) p.base_canonical

let base_hash p = Option.map Topo_hash.hex p.base_canonical

(* ------------------------------------------------------------------ *)
(* The analyses.  Each returns the payload of the response's "result"
   member; strings produced by the shared CLI emitters are parsed back
   so the response stays one structural JSON value.                     *)

let lint ~gate p =
  let report =
    Lint.Checks.run ~flavour:p.request.flavour ~data_width:16 ~gate p.net
  in
  Ok (Lidjson.parse_exn (Lint.Checks.to_json report))

let verify p =
  let report = Lint.Compose.run ~flavour:p.request.flavour p.net in
  Ok (Lidjson.parse_exn (Lint.Compose.to_json report))

let throughput ~engine ~max_cycles ~signature_capacity =
  match
    Skeleton.Measure.analyze_packed ?max_cycles ?signature_capacity engine
  with
  | Some (r : Skeleton.Measure.report) ->
      Ok
        (Lidjson.Obj
           [
             ("transient", Lidjson.Int r.transient);
             ("period", Lidjson.Int r.period);
             ( "system_throughput",
               Lidjson.Float (Skeleton.Measure.system_throughput r) );
             ("deadlocked", Lidjson.Bool r.deadlocked);
           ])
  | None ->
      Error
        "no periodic steady state within the budget (raise max_cycles or \
         signature_capacity)"

let equalize p =
  match Topology.Equalize.optimize p.net with
  | exception Invalid_argument m -> Error m
  | net', additions ->
      let channel (a : Topology.Equalize.addition) =
        let e = Topology.Network.edge net' a.edge in
        Lidjson.Obj
          [
            ( "channel",
              Lidjson.String
                (Printf.sprintf "%s.%d -> %s.%d"
                   (Topology.Network.node net' e.src.node).name e.src.port
                   (Topology.Network.node net' e.dst.node).name e.dst.port) );
            ("spare", Lidjson.Int a.spare);
          ]
      in
      Ok
        (Lidjson.Obj
           [
             ( "bound_before",
               Lidjson.Float (Topology.Elastic.throughput_bound p.net) );
             ( "bound_after",
               Lidjson.Float (Topology.Elastic.throughput_bound net') );
             ("additions", Lidjson.List (List.map channel additions));
             ("spec", Lidjson.String (Topology.Spec.print net'));
           ])

let inject ~engine ~seed ~cycles ~sites ~per_site p =
  let flavour = p.request.flavour in
  let horizon =
    if cycles > 0 then Ok cycles
    else
      match Skeleton.Measure.analyze_packed engine with
      | Some r -> Ok (max 64 (r.transient + (4 * r.period)))
      | None ->
          Error
            "no fault-free steady state within the budget; pass an explicit \
             \"cycles\""
  in
  match horizon with
  | Error _ as e -> e
  | Ok cycles ->
      let config =
        {
          Fault.Campaign.seed;
          kinds = Fault.Model.all_kinds;
          cycles;
          flavour;
          max_sites_per_kind = sites;
          injections_per_site = per_site;
        }
      in
      (* the daemon already fans requests over domains, so the campaign
         itself runs on one job; lanes keep their word-parallel screen *)
      let lanes_used = ref 1 in
      let on_lanes n _reason = lanes_used := n in
      let result = Campaign.Fault_driver.run ~jobs:1 ~on_lanes config p.net in
      Ok
        (Lidjson.parse_exn
           (Fault.Campaign.json ~jobs:1 ~lanes_used:!lanes_used result))

type engine_source =
  | Pooled of Skeleton.Packed.t
  | Resume of Skeleton.Packed.t

let compute ?engine p =
  let fresh_engine () =
    match engine with
    | Some (Pooled e) -> e
    | Some (Resume base) -> Skeleton.Packed.resume base ~edits:p.edits
    | None -> Skeleton.Packed.create ~flavour:p.request.flavour p.net
  in
  match p.request.analysis with
  | Request.Lint { gate } -> (lint ~gate p, None)
  | Request.Verify -> (verify p, None)
  | Request.Equalize -> (equalize p, None)
  | Request.Throughput { max_cycles; signature_capacity } ->
      let e = fresh_engine () in
      (throughput ~engine:e ~max_cycles ~signature_capacity, Some e)
  | Request.Inject { seed; cycles; sites; per_site } ->
      let e = fresh_engine () in
      (inject ~engine:e ~seed ~cycles ~sites ~per_site p, Some e)
