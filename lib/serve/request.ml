type analysis =
  | Lint of { gate : bool }
  | Verify
  | Throughput of { max_cycles : int option; signature_capacity : int option }
  | Equalize
  | Inject of { seed : int; cycles : int; sites : int; per_site : int }

type t = {
  id : Lidjson.t;
  spec : string;
  flavour : Lid.Protocol.flavour;
  analysis : analysis;
  edits : (string * Lid.Latency.profile option) list;
      (** channel label (as [Fault.Model.pp] prints it,
          ["SRC.P->DST.P"]) to new latency profile; [None] strips the
          channel's profile.  Resolved against the parsed topology in
          {!Handler.prepare}. *)
}

let ( let* ) = Result.bind

let string_member name j =
  match Lidjson.member name j with
  | Some (Lidjson.String s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "member %S must be a string" name)
  | None -> Ok None

let int_member ~default name j =
  match Lidjson.member name j with
  | Some (Lidjson.Int n) -> Ok n
  | Some _ -> Error (Printf.sprintf "member %S must be an integer" name)
  | None -> Ok default

let bool_member ~default name j =
  match Lidjson.member name j with
  | Some (Lidjson.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "member %S must be a boolean" name)
  | None -> Ok default

let opt_pos n = if n <= 0 then None else Some n

let of_json j =
  match j with
  | Lidjson.Obj _ ->
      let id = Option.value (Lidjson.member "id" j) ~default:Lidjson.Null in
      let* spec = string_member "spec" j in
      let* generate = string_member "generate" j in
      let* spec =
        match (spec, generate) with
        | Some s, None -> Ok s
        | None, Some g -> Ok ("generate " ^ g)
        | Some _, Some _ -> Error "give either \"spec\" or \"generate\", not both"
        | None, None -> Error "missing topology (\"spec\" or \"generate\")"
      in
      let* flavour_s = string_member "flavour" j in
      let* flavour =
        match flavour_s with
        | Some "optimized" | None -> Ok Lid.Protocol.Optimized
        | Some "original" -> Ok Lid.Protocol.Original
        | Some f ->
            Error
              (Printf.sprintf
                 "unknown flavour %S (want optimized or original)" f)
      in
      let* analysis =
        match string_member "analysis" j with
        | Error m -> Error m
        | Ok None -> Error "missing \"analysis\""
        | Ok (Some "lint") ->
            let* gate = bool_member ~default:true "gate" j in
            Ok (Lint { gate })
        | Ok (Some "throughput") ->
            let* max_cycles = int_member ~default:0 "max_cycles" j in
            let* signature_capacity =
              int_member ~default:0 "signature_capacity" j
            in
            Ok
              (Throughput
                 {
                   max_cycles = opt_pos max_cycles;
                   signature_capacity = opt_pos signature_capacity;
                 })
        | Ok (Some "verify") -> Ok Verify
        | Ok (Some "equalize") -> Ok Equalize
        | Ok (Some "inject") ->
            let* seed = int_member ~default:1 "seed" j in
            let* cycles = int_member ~default:0 "cycles" j in
            let* sites = int_member ~default:0 "sites" j in
            let* per_site = int_member ~default:1 "per_site" j in
            Ok (Inject { seed; cycles; sites; per_site = max 1 per_site })
        | Ok (Some a) ->
            Error
              (Printf.sprintf
                 "unknown analysis %S (want lint, verify, throughput, \
                  equalize or inject)"
                 a)
      in
      let* edits =
        match Lidjson.member "edits" j with
        | None -> Ok []
        | Some (Lidjson.List items) ->
            let edit = function
              | Lidjson.Obj _ as e -> (
                  let* chan = string_member "channel" e in
                  let* lat = string_member "latency" e in
                  match (chan, lat) with
                  | None, _ -> Error "an edit needs a \"channel\""
                  | _, None -> Error "an edit needs a \"latency\""
                  | Some c, Some "none" -> Ok (c, None)
                  | Some c, Some l -> (
                      match Lid.Latency.of_string l with
                      | Some p -> Ok (c, Some p)
                      | None ->
                          Error
                            (Printf.sprintf
                               "bad latency profile %S (want fixed:D, \
                                jitter:BASE:BOUND:SEED, dist:LENGTH:PITCH, \
                                table:D0,D1,... or none)"
                               l)))
              | _ -> Error "each edit must be an object"
            in
            List.fold_left
              (fun acc e ->
                let* acc = acc in
                let* e = edit e in
                Ok (e :: acc))
              (Ok []) items
            |> Result.map List.rev
        | Some _ -> Error "member \"edits\" must be an array"
      in
      Ok { id; spec; flavour; analysis; edits }
  | _ -> Error "a request must be a JSON object"

let flavour_name = function
  | Lid.Protocol.Optimized -> "optimized"
  | Lid.Protocol.Original -> "original"

let analysis_key t =
  let params =
    match t.analysis with
    | Lint { gate } -> Printf.sprintf "lint gate=%b" gate
    | Verify -> "verify"
    | Throughput { max_cycles; signature_capacity } ->
        Printf.sprintf "throughput max_cycles=%d signature_capacity=%d"
          (Option.value max_cycles ~default:0)
          (Option.value signature_capacity ~default:0)
    | Equalize -> "equalize"
    | Inject { seed; cycles; sites; per_site } ->
        Printf.sprintf "inject seed=%d cycles=%d sites=%d per_site=%d" seed
          cycles sites per_site
  in
  Printf.sprintf "%s flavour=%s" params (flavour_name t.flavour)
