(** The batch-analysis daemon behind [lidtool serve].

    Protocol: line-delimited JSON.  Each input line is one request
    object ({!Request}) or one array of request objects (a batch); each
    produces exactly one output line — the response object, or the
    array of response objects in request order.  A response is

    {v
    {"id": ..., "ok": true, "topology_hash": "...", "jobs": N, "result": ...}
    {"id": ..., "ok": false, "error": "..."}
    v}

    with [result] structurally the JSON the one-shot CLI would print
    for the same analysis.  Responses never say whether they were
    served from the memo cache — a warm daemon answers byte-for-byte
    what a cold one does; cache behaviour is observable only through
    the optional per-batch statistics lines on stderr.

    A batch runs in four phases: parse + canonicalize every request in
    parallel ({!Campaign.Parallel.map}); partition against the result
    cache sequentially, deduplicating repeated keys within the batch;
    compute the unique misses in parallel; insert results and emit
    responses in input order sequentially.  Caches are touched only
    from the calling domain, so no locking is needed, and the
    positional merge keeps every response deterministic. *)

type t

val create :
  ?jobs:int -> ?result_capacity:int -> ?engine_capacity:int -> unit -> t
(** [jobs] defaults to {!Campaign.Parallel.default_jobs}; the result
    memo cache holds [result_capacity] (default 256) analysis payloads
    and the engine pool [engine_capacity] (default 32) compiled packed
    engines, both LRU-bounded ({!Cache}). *)

val jobs : t -> int

val result_cache_hits : t -> int
val result_cache_misses : t -> int
(** Lifetime counters of the result memo cache (in-batch duplicate
    answers count as hits). *)

type batch_stats = {
  batch : int;  (** 1-based sequence number of the batch *)
  requests : int;
  hits : int;  (** answered from the memo cache or an in-batch twin *)
  misses : int;  (** unique keys actually computed *)
  errors : int;  (** requests that failed to parse or prepare *)
  cone_reuse : bool;
      (** some computed request resumed a pooled engine of its unedited
          base topology instead of recompiling *)
  reused_compilation : string option;
      (** topology hash of the first such reused compilation *)
}

val process : t -> Lidjson.t list -> Lidjson.t list * batch_stats
(** Process one batch; responses are in request order.  Serialized on
    an internal lock, so concurrent connections may call it freely —
    batches never interleave and the caches see one writer at a time. *)

val stats_json : t -> batch_stats -> string
(** One compact JSON line for stderr:
    [{"batch":k,"requests":n,"hits":h,"misses":m,"errors":e,"jobs":j,
    "cone_reuse":b}], plus ["reused_compilation"] when a pooled engine
    was resumed. *)

val serve_channel : ?stats:bool -> t -> in_channel -> out_channel -> unit
(** Read request lines until EOF, writing one response line each,
    flushing per line.  [stats] (default false) emits {!stats_json}
    lines on stderr after every batch. *)

val serve_socket : ?stats:bool -> ?connections:int -> t -> string -> unit
(** Bind a Unix domain socket at the given path (unlinking any stale
    one) and serve clients concurrently — one handler domain per
    connection, at most {!jobs} live at once (further clients queue in
    the listen backlog); the memo cache persists across connections and
    batches serialize on the daemon lock, so each connection's
    responses are byte-identical to what a sequential server would
    send.  Never returns — unless [connections] bounds how many to
    accept (tests), after which remaining handlers are drained and the
    socket is unlinked. *)
