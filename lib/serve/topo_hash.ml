let canonical net = Topology.Spec.print net
let hash text = Skeleton.Packed.fnv1a_string text
let hex text = Printf.sprintf "%016x" (hash text)
