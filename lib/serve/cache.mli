(** Bounded LRU memo cache, string-keyed.

    Two instances back the serve daemon: the result cache (canonical
    request key to analysis payload) and the packed-engine pool
    (canonical topology + flavour to a reusable {!Skeleton.Packed.t}).
    Capacity is a hard bound — inserting into a full cache evicts the
    least-recently-used entry — so a long-running daemon's memory stays
    O(capacity) regardless of how many distinct topologies pass through.

    Not thread-safe: the daemon touches its caches only from the calling
    domain, between the parallel phases of a batch. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] is clamped to at least 1. *)

val find : 'a t -> string -> 'a option
(** Lookup; a hit refreshes the entry's recency and bumps {!hits},
    a miss bumps {!misses}. *)

val set : 'a t -> string -> 'a -> unit
(** Insert or overwrite, evicting the least-recently-used entry when
    the cache is full.  Does not touch the hit/miss counters. *)

val take : 'a t -> string -> 'a option
(** Lookup {e and remove} — the engine-pool operation: the caller gets
    exclusive ownership of the entry (safe to hand to another domain)
    and is expected to {!set} it back when done.  Counts as a hit or
    miss like {!find}. *)

val length : 'a t -> int
val hits : 'a t -> int
val misses : 'a t -> int
