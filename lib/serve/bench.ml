type result = {
  requests : int;
  unique : int;
  rounds : int;
  jobs : int;
  per_request_s : float;
  amortized_s : float;
  speedup : float;
  hits : int;
  misses : int;
  identical : bool;
}

(* The base workload: every generator family, every analysis that the
   daemon memoizes.  Lint runs without the gate-level pass — E19
   measures amortization, not RTL elaboration.  The torus equalize
   request deliberately fails (cyclic networks must not be equalized):
   deterministic errors are memoized like results.  *)
let workload ~quick =
  let mesh, torus, butterfly =
    if quick then ("mesh 6 6", "torus 4 4", "butterfly 4")
    else ("mesh 10 10", "torus 6 6", "butterfly 5")
  in
  let req id gen analysis extras =
    Lidjson.Obj
      ([
         ("id", Lidjson.Int id);
         ("generate", Lidjson.String gen);
         ("analysis", Lidjson.String analysis);
       ]
      @ extras)
  in
  List.concat_map
    (fun gen ->
      [
        req 0 gen "lint" [ ("gate", Lidjson.Bool false) ];
        req 0 gen "throughput" [];
        req 0 gen "equalize" [];
      ])
    [ mesh; torus; butterfly ]

(* Re-number the ids so every occurrence of a request is distinct at
   protocol level while hitting the same memo key.  *)
let renumber offset reqs =
  List.mapi
    (fun i r ->
      match r with
      | Lidjson.Obj members ->
          Lidjson.Obj
            (List.map
               (function
                 | "id", _ -> ("id", Lidjson.Int (offset + i + 1)) | kv -> kv)
               members)
      | r -> r)
    reqs

(* Responses embed the request id, which differs between occurrences of
   the same request; blank it before comparing runs.  *)
let comparable response =
  match response with
  | Lidjson.Obj members ->
      Lidjson.to_string
        (Lidjson.Obj
           (List.map
              (function "id", _ -> ("id", Lidjson.Null) | kv -> kv)
              members))
  | r -> Lidjson.to_string r

let run ?(quick = false) ?jobs () =
  let jobs =
    match jobs with
    | Some j when j >= 1 -> j
    | _ -> Campaign.Parallel.default_jobs ()
  in
  let rounds = if quick then 4 else 8 in
  let base = workload ~quick in
  let n = List.length base in
  let batches = List.init rounds (fun r -> renumber (r * n) base) in
  let stream = List.concat batches in
  (* untimed warm-up: first-touch costs (heap growth, lazy forcing)
     must not land on whichever timed run happens to go first *)
  ignore (Daemon.process (Daemon.create ~jobs ()) base);
  (* amortized: one daemon, one batch per round *)
  let daemon = Daemon.create ~jobs () in
  let t0 = Unix.gettimeofday () in
  let warm =
    List.concat_map (fun batch -> fst (Daemon.process daemon batch)) batches
  in
  let amortized_s = Unix.gettimeofday () -. t0 in
  let hits = Daemon.result_cache_hits daemon in
  let misses = Daemon.result_cache_misses daemon in
  (* per-request: a fresh daemon for every request — nothing amortized *)
  let t0 = Unix.gettimeofday () in
  let cold =
    List.map
      (fun r -> List.hd (fst (Daemon.process (Daemon.create ~jobs ()) [ r ])))
      stream
  in
  let per_request_s = Unix.gettimeofday () -. t0 in
  let identical =
    List.length warm = List.length cold
    && List.for_all2
         (fun w c -> comparable w = comparable c)
         warm cold
  in
  {
    requests = List.length stream;
    unique = n;
    rounds;
    jobs;
    per_request_s;
    amortized_s;
    speedup =
      (if amortized_s > 0. then per_request_s /. amortized_s else infinity);
    hits;
    misses;
    identical;
  }

let pp fmt r =
  Format.fprintf fmt
    "E19 serve amortization: %d requests (%d unique x %d rounds), %d job(s)@."
    r.requests r.unique r.rounds r.jobs;
  Format.fprintf fmt "  per-invocation: %8.3f s@." r.per_request_s;
  Format.fprintf fmt "  amortized     : %8.3f s  (%d hits / %d misses)@."
    r.amortized_s r.hits r.misses;
  Format.fprintf fmt "  speedup       : %8.2fx  responses %s@." r.speedup
    (if r.identical then "identical" else "DIVERGED")

let to_json r =
  Lidjson.to_string
    (Lidjson.Obj
       [
         ("experiment", Lidjson.String "E19");
         ("requests", Lidjson.Int r.requests);
         ("unique", Lidjson.Int r.unique);
         ("rounds", Lidjson.Int r.rounds);
         ("jobs", Lidjson.Int r.jobs);
         ("per_request_s", Lidjson.Float r.per_request_s);
         ("amortized_s", Lidjson.Float r.amortized_s);
         ("speedup", Lidjson.Float r.speedup);
         ("hits", Lidjson.Int r.hits);
         ("misses", Lidjson.Int r.misses);
         ("identical", Lidjson.Bool r.identical);
       ])
