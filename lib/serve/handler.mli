(** One request, evaluated.

    The handler splits request evaluation into the two halves the batch
    daemon needs: {!prepare} (parse the spec, canonicalize, derive the
    cache keys — pure, safe to fan out over domains) and {!compute}
    (run the analysis — also domain-safe, because every engine it
    touches is either created locally or handed over with exclusive
    ownership).  The daemon consults its caches between the two.

    Every analysis payload goes through the same emitters the one-shot
    CLI uses — [Lint.Checks.to_json], [Fault.Campaign.json] — parsed
    back with {!Lidjson.parse_exn} and re-embedded, so a serve response
    carries structurally the very JSON [lidtool lint --json] or
    [lidtool inject --json] would print. *)

type prepared = {
  request : Request.t;
  net : Topology.Network.t;
      (** the parsed topology {e with the request's edits applied} *)
  canonical : string;  (** {!Topo_hash.canonical} of [net] *)
  hash_hex : string;  (** {!Topo_hash.hex} — the response's [topology_hash] *)
  key : string;  (** result memo-cache key: analysis params + canonical *)
  edits : (Topology.Network.edge_id * Lid.Latency.profile option) list;
      (** the request's latency edits, channel labels resolved to edge
          ids of the parsed topology *)
  base_canonical : string option;
      (** canonical of the {e unedited} topology; [Some] iff the request
          carried edits — the daemon uses it to find a pooled engine to
          {!Skeleton.Packed.resume} instead of recompiling *)
}

val prepare : Request.t -> (prepared, string) result
(** Parse and canonicalize.  Lint and verify requests parse with
    [allow_direct] (the analyzers report what the builder refuses —
    verify flags a station-less shell-to-shell channel as an assumption
    mismatch); everything else
    parses strictly, exactly as the corresponding CLI subcommand.
    Latency edits are resolved against the parsed topology and applied
    here, so [canonical], [hash_hex] and [key] all describe the edited
    network — a cached result can never leak across different edits. *)

val wants_engine : prepared -> bool
(** Whether {!compute} can reuse a pooled packed engine (throughput
    measurement and inject-horizon derivation can; lint and equalize
    never simulate). *)

val engine_key : prepared -> string
(** Engine-pool key: flavour + canonical (edited) topology. *)

val base_engine_key : prepared -> string option
(** Engine-pool key of the unedited topology, when the request carried
    edits — the incremental-compilation fallback lookup. *)

val base_hash : prepared -> string option
(** {!Topo_hash.hex} of the unedited topology, for the daemon's
    [reused_compilation] statistic. *)

type engine_source =
  | Pooled of Skeleton.Packed.t
      (** exclusively owned, reset, compiled for the edited topology *)
  | Resume of Skeleton.Packed.t
      (** an engine of the {e unedited} topology still sitting in the
          pool; {!compute} derives a fresh engine from it with
          {!Skeleton.Packed.resume} (sharing the compiled structure,
          re-packing only the edited channels) without taking ownership
          — resume reads only immutable compile-time arrays *)

val compute :
  ?engine:engine_source ->
  prepared ->
  (Lidjson.t, string) result * Skeleton.Packed.t option
(** Run the analysis.  A [Pooled] engine must be exclusively owned and
    in reset state; the returned engine (the one given, the one resumed,
    or one created locally when the analysis needed it) is {e not} reset
    — the daemon resets it when pooling it back under {!engine_key}.
    The payload/error is deterministic for a given [prepared],
    independent of engine reuse, jobs, or cache state. *)
