(** One request, evaluated.

    The handler splits request evaluation into the two halves the batch
    daemon needs: {!prepare} (parse the spec, canonicalize, derive the
    cache keys — pure, safe to fan out over domains) and {!compute}
    (run the analysis — also domain-safe, because every engine it
    touches is either created locally or handed over with exclusive
    ownership).  The daemon consults its caches between the two.

    Every analysis payload goes through the same emitters the one-shot
    CLI uses — [Lint.Checks.to_json], [Fault.Campaign.json] — parsed
    back with {!Lidjson.parse_exn} and re-embedded, so a serve response
    carries structurally the very JSON [lidtool lint --json] or
    [lidtool inject --json] would print. *)

type prepared = {
  request : Request.t;
  net : Topology.Network.t;
  canonical : string;  (** {!Topo_hash.canonical} of [net] *)
  hash_hex : string;  (** {!Topo_hash.hex} — the response's [topology_hash] *)
  key : string;  (** result memo-cache key: analysis params + canonical *)
}

val prepare : Request.t -> (prepared, string) result
(** Parse and canonicalize.  Lint requests parse with [allow_direct]
    (the linter reports what the builder refuses); everything else
    parses strictly, exactly as the corresponding CLI subcommand. *)

val wants_engine : prepared -> bool
(** Whether {!compute} can reuse a pooled packed engine (throughput
    measurement and inject-horizon derivation can; lint and equalize
    never simulate). *)

val engine_key : prepared -> string
(** Engine-pool key: flavour + canonical topology. *)

val compute :
  ?engine:Skeleton.Packed.t ->
  prepared ->
  (Lidjson.t, string) result * Skeleton.Packed.t option
(** Run the analysis.  [engine], when given, must be exclusively owned
    and in reset state; the returned engine (the one given, or one
    created locally when the analysis needed it) is {e not} reset — the
    daemon resets it when pooling it back.  The payload/error is
    deterministic for a given [prepared], independent of engine reuse,
    jobs, or cache state. *)
