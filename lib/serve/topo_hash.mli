(** Canonical topology hashing.

    The serve daemon memoizes compiled engines and analysis results
    across requests, so two requests naming the same network — one by
    inline spec, one by a [generate] line, one with reordered
    attributes — must key the same cache slot.  The canonical form is
    {!Topology.Spec.print} of the parsed network: node declarations in
    id order, one normalized edge line per channel, every default
    attribute omitted.  The hash is the same FNV-1a fold the packed
    engine interns state signatures with ({!Skeleton.Packed.fnv1a_fold}),
    run over the canonical text's bytes. *)

val canonical : Topology.Network.t -> string
(** The normalized spec text — the cache key material. *)

val hash : string -> int
(** FNV-1a over the canonical text, folded to OCaml's non-negative int
    range. *)

val hex : string -> string
(** [hash] rendered as a fixed-width lowercase hex string — the
    [topology_hash] field of serve responses. *)
