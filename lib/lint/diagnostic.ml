module Net = Topology.Network

type severity = Info | Warning | Error

type code =
  | LID001
  | LID002
  | LID003
  | LID004
  | LID005
  | LID006
  | LID007
  | LID008
  | LID009
  | LID010
  | LID011

type location =
  | L_network
  | L_node of Net.node_id
  | L_edge of Net.edge_id
  | L_loop of Net.node_id list
  | L_signal of string

type params =
  | P_none
  | P_reconvergence of { m : int; i : int; tokens : int; latency : int }
  | P_loop of { s : int; r : int; tokens : int; latency : int }
  | P_duty of { active : int; period : int }
  | P_stop_sources of string list
  | P_retx of { depth : int; rtt : int }
  | P_contract of { cls : string; obligation : string; outcome : string }
  | P_cycle of { length : int; classes : string list }
  | P_assume of { producer : string; consumer : string }

type fixit = { fix_edge : Net.edge_id; fix_spare : int }

type t = {
  code : code;
  severity : severity;
  loc : location;
  message : string;
  params : params;
  fixits : fixit list;
}

let all_codes =
  [
    LID001;
    LID002;
    LID003;
    LID004;
    LID005;
    LID006;
    LID007;
    LID008;
    LID009;
    LID010;
    LID011;
  ]

let code_id = function
  | LID001 -> "LID001"
  | LID002 -> "LID002"
  | LID003 -> "LID003"
  | LID004 -> "LID004"
  | LID005 -> "LID005"
  | LID006 -> "LID006"
  | LID007 -> "LID007"
  | LID008 -> "LID008"
  | LID009 -> "LID009"
  | LID010 -> "LID010"
  | LID011 -> "LID011"

let code_slug = function
  | LID001 -> "combinational-stop-path"
  | LID002 -> "missing-memory-element"
  | LID003 -> "relay-imbalance"
  | LID004 -> "zero-throughput-cycle"
  | LID005 -> "dead-environment"
  | LID006 -> "env-duty-cap"
  | LID007 -> "potential-deadlock"
  | LID008 -> "retx-buffer-undersized"
  | LID009 -> "contract-violation"
  | LID010 -> "contract-deadlock"
  | LID011 -> "assumption-mismatch"

let code_doc = function
  | LID001 ->
      "a stop signal reaches a channel's producer combinationally, without \
       crossing a memory element"
  | LID002 ->
      "a station-less channel feeds a shell: the minimum-memory theorem \
       requires at least one relay station"
  | LID003 ->
      "relay imbalance or limiting loop: the structural throughput bound is \
       below 1"
  | LID004 -> "a token-free cycle permanently freezes part of the system"
  | LID005 ->
      "dead environment: a never-active source or a never-accepting sink"
  | LID006 ->
      "an environment duty cycle caps throughput below the structural bound"
  | LID007 -> "half relay stations inside a loop: potential deadlock"
  | LID008 ->
      "a retransmitting station's replay buffer is shallower than the \
       channel's worst-case round trip"
  | LID009 ->
      "a component class refutes its protocol contract (handshake or \
       stall-response obligation)"
  | LID010 ->
      "contract-graph deadlock: a token-starved cycle every channel of \
       which can sustain back-pressure while holding no token"
  | LID011 ->
      "assumption mismatch on a channel: the producer-side guarantee is \
       weaker than the consumer's interface assumption"

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

let loc_rank = function
  | L_network -> (0, 0)
  | L_node id -> (1, id)
  | L_edge id -> (2, id)
  | L_loop ids -> (3, match ids with [] -> 0 | id :: _ -> id)
  | L_signal _ -> (4, 0)

let compare a b =
  let c = Stdlib.compare (severity_rank b.severity) (severity_rank a.severity) in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.code b.code in
    if c <> 0 then c else Stdlib.compare (loc_rank a.loc) (loc_rank b.loc)

let node_name net id = (Net.node net id).name

let edge_label net eid =
  let e = Net.edge net eid in
  Printf.sprintf "%s.%d -> %s.%d" (node_name net e.src.node) e.src.port
    (node_name net e.dst.node) e.dst.port

let pp_location net fmt = function
  | L_network -> Format.pp_print_string fmt "network"
  | L_node id -> Format.pp_print_string fmt (node_name net id)
  | L_edge id -> Format.pp_print_string fmt (edge_label net id)
  | L_loop ids ->
      Format.fprintf fmt "loop %s"
        (String.concat " -> " (List.map (node_name net) ids))
  | L_signal s -> Format.fprintf fmt "signal %s" s

(* The replacement declaration a fix-it proposes: the channel's canonical
   [Spec.print] line with the spare full stations appended — pasteable
   into a .lid file verbatim. *)
let fixit_line net f =
  let e = Net.edge net f.fix_edge in
  let stations =
    e.Net.stations
    @ List.init f.fix_spare (fun _ -> Lid.Relay_station.Full)
  in
  Topology.Spec.channel_line ~stations net f.fix_edge

let pp net fmt d =
  Format.fprintf fmt "%s %-7s %a: %s" (code_id d.code)
    (severity_to_string d.severity)
    (pp_location net) d.loc d.message;
  List.iter
    (fun f ->
      Format.fprintf fmt "@,    fix: append %d full station(s): %s"
        f.fix_spare (fixit_line net f))
    d.fixits

(* --- JSON ----------------------------------------------------------- *)
(* Hand-rolled, like [Campaign.Bench.to_json]: the vocabulary is fixed
   and tiny, a json library dependency would be all cost.  Strings go
   through [Lidjson.quote] — node and signal names are user-controlled
   and may carry quotes, newlines or UTF-8, which OCaml's [%S] would
   render as decimal escapes no JSON parser accepts. *)

let buf_kv_str b key value =
  Printf.bprintf b "%s: %s" (Lidjson.quote key) (Lidjson.quote value)

let json_location net b = function
  | L_network -> Printf.bprintf b "{\"kind\": \"network\"}"
  | L_node id ->
      Printf.bprintf b "{\"kind\": \"node\", \"node\": %s}"
        (Lidjson.quote (node_name net id))
  | L_edge id ->
      Printf.bprintf b "{\"kind\": \"edge\", \"edge_id\": %d, \"edge\": %s}" id
        (Lidjson.quote (edge_label net id))
  | L_loop ids ->
      Printf.bprintf b "{\"kind\": \"loop\", \"nodes\": [%s]}"
        (String.concat ", "
           (List.map (fun id -> Lidjson.quote (node_name net id)) ids))
  | L_signal s ->
      Printf.bprintf b "{\"kind\": \"signal\", \"signal\": %s}" (Lidjson.quote s)

let json_params b = function
  | P_none -> Buffer.add_string b "{}"
  | P_reconvergence { m; i; tokens; latency } ->
      Printf.bprintf b
        "{\"m\": %d, \"i\": %d, \"tokens\": %d, \"latency\": %d}" m i tokens
        latency
  | P_loop { s; r; tokens; latency } ->
      Printf.bprintf b
        "{\"s\": %d, \"r\": %d, \"tokens\": %d, \"latency\": %d}" s r tokens
        latency
  | P_duty { active; period } ->
      Printf.bprintf b "{\"active\": %d, \"period\": %d}" active period
  | P_stop_sources names ->
      Printf.bprintf b "{\"stop_sources\": [%s]}"
        (String.concat ", " (List.map Lidjson.quote names))
  | P_retx { depth; rtt } ->
      Printf.bprintf b "{\"depth\": %d, \"rtt\": %d}" depth rtt
  | P_contract { cls; obligation; outcome } ->
      Printf.bprintf b "{\"class\": %s, \"obligation\": %s, \"outcome\": %s}"
        (Lidjson.quote cls) (Lidjson.quote obligation) (Lidjson.quote outcome)
  | P_cycle { length; classes } ->
      Printf.bprintf b "{\"length\": %d, \"classes\": [%s]}" length
        (String.concat ", " (List.map Lidjson.quote classes))
  | P_assume { producer; consumer } ->
      Printf.bprintf b "{\"producer\": %s, \"consumer\": %s}"
        (Lidjson.quote producer) (Lidjson.quote consumer)

let json_to_buffer net b d =
  Buffer.add_string b "{";
  buf_kv_str b "code" (code_id d.code);
  Buffer.add_string b ", ";
  buf_kv_str b "slug" (code_slug d.code);
  Buffer.add_string b ", ";
  buf_kv_str b "severity" (severity_to_string d.severity);
  Buffer.add_string b ", \"location\": ";
  json_location net b d.loc;
  Buffer.add_string b ", ";
  buf_kv_str b "message" d.message;
  Buffer.add_string b ", \"params\": ";
  json_params b d.params;
  Buffer.add_string b ", \"fixits\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b
        "{\"edge_id\": %d, \"edge\": %s, \"spare\": %d, \"line\": %s}"
        f.fix_edge
        (Lidjson.quote (edge_label net f.fix_edge))
        f.fix_spare
        (Lidjson.quote (fixit_line net f)))
    d.fixits;
  Buffer.add_string b "]}"
