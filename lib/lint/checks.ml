module Net = Topology.Network
module Elastic = Topology.Elastic
module D = Diagnostic

type ratio = int * int

type report = {
  net : Net.t;
  diagnostics : D.t list;
  structural : ratio option;
  env_cap : ratio;
  predicted : ratio option;
  gate_ran : bool;
  gate_proved : bool;
  gate_skip_reason : string option;
}

(* Exact rational arithmetic by cross-multiplication: counts are tiny
   (cycle token/latency sums, pattern periods), so no overflow and no
   reduction is ever needed. *)
let ratio_value (n, d) = float_of_int n /. float_of_int d
let ratio_eq (a, b) (c, d) = a * d = c * b
let ratio_le (a, b) (c, d) = a * d <= c * b
let ratio_lt (a, b) (c, d) = a * d < c * b
let ratio_min r1 r2 = if ratio_le r1 r2 then r1 else r2

(* --- structural leg ------------------------------------------------- *)

let check_elastic ?net el ~cyclic =
  match Elastic.min_cycle_ratio el with
  | exception Elastic.Zero_latency_cycle msg ->
      ( [
          {
            D.code = D.LID001;
            severity = D.Error;
            loc = D.L_network;
            message = "combinational stop cycle: " ^ msg;
            params = D.P_none;
            fixits = [];
          };
        ],
        None )
  | tok, lat when tok >= lat -> ([], Some (1, 1))
  | _ ->
      let (tok, lat), origins = Elastic.critical_cycle_origins el in
      let cycle_edges =
        List.filter_map
          (function
            | Elastic.O_station (e, _, dir) -> Some (e, dir)
            | Elastic.O_buffer (e, dir) -> Some (e, dir)
            | Elastic.O_internal -> None)
          origins
      in
      let loc =
        if cyclic then
          match net with
          | Some n ->
              let nodes =
                List.fold_left
                  (fun acc (e, dir) ->
                    match dir with
                    | `Backward -> acc
                    | `Forward ->
                        let s = (Net.edge n e).src.node in
                        if List.mem s acc then acc else s :: acc)
                  [] cycle_edges
                |> List.rev
              in
              if nodes = [] then D.L_network else D.L_loop nodes
          | None -> D.L_network
        else
          (* the channel the critical cycle traverses against the data
             flow is the capacity-starved short branch — exactly where
             Equalize appends spare stations *)
          match
            List.find_opt (fun (_, dir) -> dir = `Backward) cycle_edges
          with
          | Some (e, _) -> D.L_edge e
          | None -> (
              match cycle_edges with
              | (e, _) :: _ -> D.L_edge e
              | [] -> D.L_network)
      in
      let d =
        if tok = 0 then
          {
            D.code = D.LID004;
            severity = D.Error;
            loc;
            message =
              Printf.sprintf
                "token-free cycle of latency %d: nothing can ever fire around \
                 it (throughput 0)"
                lat;
            params =
              D.P_loop { s = 0; r = lat; tokens = 0; latency = lat };
            fixits = [];
          }
        else if cyclic then
          let s = tok and r = lat - tok in
          {
            D.code = D.LID003;
            severity = D.Warning;
            loc;
            message =
              Printf.sprintf
                "feedback loop of S=%d shell(s) and R=%d station(s): sustained \
                 throughput capped at %d/%d = %.4f (T=S/(S+R); the protocol \
                 adapts, do not equalize a loop)"
                s r tok lat
                (ratio_value (tok, lat));
            params = D.P_loop { s; r; tokens = tok; latency = lat };
            fixits = [];
          }
        else
          let m = lat and i = lat - tok in
          {
            D.code = D.LID003;
            severity = D.Warning;
            loc;
            message =
              Printf.sprintf
                "relay imbalance i=%d over the m=%d-stage critical virtual \
                 loop: sustained throughput capped at %d/%d = %.4f \
                 (T=(m-i)/m)"
                i m tok lat
                (ratio_value (tok, lat));
            params = D.P_reconvergence { m; i; tokens = tok; latency = lat };
            fixits = [];
          }
      in
      ([ d ], Some (tok, lat))

(* --- environment leg ------------------------------------------------ *)

let pattern_duty = function
  | Topology.Pattern.Always -> (1, 1)
  | Topology.Pattern.Never -> (0, 1)
  | Topology.Pattern.Periodic { period; active; _ } -> (active, period)
  | Topology.Pattern.Word w ->
      (Array.fold_left (fun a b -> if b then a + 1 else a) 0 w, Array.length w)

(* Per env node, the rate it can sustain: a source emits on its active
   cycles; a sink *stalls* on its active cycles, so it accepts on the
   complement. *)
let env_rates net =
  List.filter_map
    (fun (n : Net.node) ->
      match n.kind with
      | Net.Source { pattern; _ } -> Some (n, `Source, pattern_duty pattern)
      | Net.Sink { pattern } ->
          let a, p = pattern_duty pattern in
          Some (n, `Sink, (p - a, p))
      | Net.Shell _ -> None)
    (Net.nodes net)

(* --- the driver ----------------------------------------------------- *)

let run ?(flavour = Lid.Protocol.Optimized) ?(data_width = 16) ?(gate = true)
    net =
  let info = Topology.Classify.classify net in
  (* LID002: the builder's minimum-memory theorem, channel by channel
     (the linter accepts what the builder would refuse) *)
  let memory_diags =
    List.filter_map
      (fun (e : Net.edge) ->
        match ((Net.node net e.dst.node).kind, e.stations) with
        | Net.Shell _, [] ->
            Some
              {
                D.code = D.LID002;
                severity = D.Error;
                loc = D.L_edge e.id;
                message =
                  "station-less channel into a shell: the consumer cannot \
                   register the stop, so at least one relay station is \
                   required (minimum-memory theorem)";
                params = D.P_none;
                fixits = [ { D.fix_edge = e.id; fix_spare = 1 } ];
              }
        | _ -> None)
      (Net.edges net)
  in
  (* LID001 (topology level) / LID003 / LID004: the structural bound *)
  let structural_diags, structural =
    check_elastic ~net (Elastic.of_network net) ~cyclic:info.cyclic
  in
  let structural_diags =
    (* on feed-forward networks the LID003 fix is computable: the spare
       stations Equalize.optimize would append *)
    if info.cyclic then structural_diags
    else
      List.map
        (fun (d : D.t) ->
          if d.code <> D.LID003 then d
          else
            match Topology.Equalize.optimize ~budget:128 net with
            | _, additions ->
                {
                  d with
                  D.fixits =
                    List.map
                      (fun (a : Topology.Equalize.addition) ->
                        { D.fix_edge = a.edge; fix_spare = a.spare })
                      additions;
                }
            | exception Invalid_argument _ -> d)
        structural_diags
  in
  (* LID005 / LID006: environment duty *)
  let env = env_rates net in
  let env_cap =
    List.fold_left (fun acc (_, _, r) -> ratio_min acc r) (1, 1) env
  in
  let env_diags =
    List.filter_map
      (fun ((n : Net.node), role, (num, den)) ->
        if num = 0 then
          Some
            {
              D.code = D.LID005;
              severity = D.Warning;
              loc = D.L_node n.id;
              message =
                (match role with
                | `Source ->
                    "source is never active: the channels it reaches are \
                     never driven and its component starves after the \
                     transient"
                | `Sink ->
                    "sink never accepts: the channels into it never drain \
                     and its component stalls once the buffers fill");
              params = D.P_duty { active = 0; period = den };
              fixits = [];
            }
        else
          match structural with
          | Some s when ratio_lt (num, den) s ->
              Some
                {
                  D.code = D.LID006;
                  severity = D.Info;
                  loc = D.L_node n.id;
                  message =
                    Printf.sprintf
                      "%s duty %d/%d = %.4f caps sustained throughput below \
                       the structural bound %d/%d = %.4f"
                      (match role with
                      | `Source -> "source emit"
                      | `Sink -> "sink accept")
                      num den
                      (ratio_value (num, den))
                      (fst s) (snd s) (ratio_value s);
                  params = D.P_duty { active = num; period = den };
                  fixits = [];
                }
          | _ -> None)
      env
  in
  (* LID007: the static deadlock rules *)
  let deadlock_diags =
    match Topology.Deadlock.static_verdict net with
    | Topology.Deadlock.Safe_feedforward | Topology.Deadlock.Safe_full_only ->
        []
    | Topology.Deadlock.Potential { half_in_loops } ->
        List.map
          (fun (loop, halves) ->
            {
              D.code = D.LID007;
              severity = D.Warning;
              loc = D.L_loop loop;
              message =
                Printf.sprintf
                  "loop contains %d half relay station(s): potential \
                   deadlock — decide by simulating past the transient, or \
                   cure by substituting full stations"
                  halves;
              params = D.P_none;
              fixits = [];
            })
          half_in_loops
  in
  (* LID008: a variable-latency channel's retransmitting station must be
     able to keep the whole round trip in flight — one worst-case data
     traversal (1 + max delay), the ack's way back (1), and the launch
     slot itself (1) — or the sender stalls on a full replay buffer even
     without faults, and a single loss can strand more flits than one
     go-back-N replay covers. *)
  let retx_diags =
    List.filter_map
      (fun (e : Net.edge) ->
        match e.latency with
        | None -> None
        | Some profile -> (
            let first_retx =
              List.find_map
                (function
                  | Lid.Relay_station.Retx { depth } -> Some depth
                  | Lid.Relay_station.Full | Lid.Relay_station.Half -> None)
                e.stations
            in
            match first_retx with
            | None -> None
            | Some depth ->
                let rtt =
                  Lid.Relay_station.round_trip
                    ~max_delay:(Lid.Latency.max_delay profile)
                in
                if depth >= rtt then None
                else
                  Some
                    {
                      D.code = D.LID008;
                      severity = D.Warning;
                      loc = D.L_edge e.id;
                      message =
                        Printf.sprintf
                          "replay buffer of depth %d is below the channel's \
                           worst-case round trip of %d cycles (launch + data \
                           traversal with max delay %d + ack): the sender can \
                           stall fault-free and a loss may outrun one replay \
                           — deepen to retx:%d"
                          depth rtt
                          (Lid.Latency.max_delay profile)
                          rtt;
                      params = D.P_retx { depth; rtt };
                      fixits = [];
                    }))
      (Net.edges net)
  in
  (* LID001 (gate level): elaborate and prove stop registration *)
  let gate_ran, gate_proved, gate_diags, gate_skip_reason =
    if not gate then (false, false, [], Some "disabled")
    else if structural = None then
      ( false,
        false,
        [],
        Some "skipped: combinational stop cycle at topology level" )
    else
      match Topology.Rtl_net.of_network ~flavour ~data_width net with
      | circ ->
          let r = Stop_path.analyze net circ in
          let diags =
            List.map
              (fun (v : Stop_path.violation) ->
                let names = List.map (Stop_path.source_name net) v.v_sources in
                {
                  D.code = D.LID001;
                  severity = D.Error;
                  loc = D.L_edge v.v_edge;
                  message =
                    Printf.sprintf
                      "stop reaches the channel's producer combinationally, \
                       from: %s"
                      (String.concat ", " names);
                  params = D.P_stop_sources names;
                  fixits = [ { D.fix_edge = v.v_edge; fix_spare = 1 } ];
                })
              r.violations
          in
          (true, r.proved, diags, None)
      | exception Invalid_argument msg ->
          if String.starts_with ~prefix:"Circuit: combinational cycle" msg then
            ( false,
              false,
              [
                {
                  D.code = D.LID001;
                  severity = D.Error;
                  loc = D.L_network;
                  message = msg;
                  params = D.P_none;
                  fixits = [];
                };
              ],
              Some msg )
          else (false, false, [], Some msg)
  in
  let diagnostics =
    List.stable_sort D.compare
      (memory_diags @ structural_diags @ env_diags @ deadlock_diags
     @ retx_diags @ gate_diags)
  in
  let predicted = Option.map (fun s -> ratio_min s env_cap) structural in
  {
    net;
    diagnostics;
    structural;
    env_cap;
    predicted;
    gate_ran;
    gate_proved;
    gate_skip_reason;
  }

(* --- report accessors ----------------------------------------------- *)

let count r sev =
  List.length (List.filter (fun (d : D.t) -> d.severity = sev) r.diagnostics)

let max_severity r =
  List.fold_left
    (fun acc (d : D.t) ->
      match acc with
      | None -> Some d.severity
      | Some s ->
          if D.severity_rank d.severity > D.severity_rank s then
            Some d.severity
          else acc)
    None r.diagnostics

let predicted_float r = Option.map ratio_value r.predicted

let pp fmt r =
  List.iter
    (fun d -> Format.fprintf fmt "@[<v>%a@]@." (D.pp r.net) d)
    r.diagnostics;
  (match r.predicted with
  | Some (n, d) ->
      Format.fprintf fmt "predicted sustained throughput: %d/%d = %.4f@." n d
        (ratio_value (n, d))
  | None ->
      Format.fprintf fmt
        "predicted sustained throughput: none (combinational stop cycle)@.");
  (if r.gate_ran then
     Format.fprintf fmt "stop registration: %s on the elaborated netlist@."
       (if r.gate_proved then "proved" else "VIOLATED")
   else
     match r.gate_skip_reason with
     | Some why -> Format.fprintf fmt "stop registration: not checked (%s)@." why
     | None -> ());
  Format.fprintf fmt "summary: %d error(s), %d warning(s), %d info(s)@."
    (count r D.Error) (count r D.Warning) (count r D.Info)

let to_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"diagnostics\": [";
  List.iteri
    (fun i d ->
      Buffer.add_string b (if i = 0 then "\n    " else ",\n    ");
      D.json_to_buffer r.net b d)
    r.diagnostics;
  Buffer.add_string b (if r.diagnostics = [] then "],\n" else "\n  ],\n");
  Printf.bprintf b
    "  \"summary\": {\"errors\": %d, \"warnings\": %d, \"infos\": %d},\n"
    (count r D.Error) (count r D.Warning) (count r D.Info);
  (match r.predicted with
  | Some (n, d) ->
      Printf.bprintf b
        "  \"predicted_throughput\": {\"tokens\": %d, \"latency\": %d, \
         \"value\": %.6f},\n"
        n d
        (ratio_value (n, d))
  | None -> Buffer.add_string b "  \"predicted_throughput\": null,\n");
  (if r.gate_ran then
     Printf.bprintf b "  \"stop_path\": {\"ran\": true, \"proved\": %b}\n"
       r.gate_proved
   else
     Printf.bprintf b "  \"stop_path\": {\"ran\": false, \"reason\": %s}\n"
       (Lidjson.quote (Option.value r.gate_skip_reason ~default:"")));
  Buffer.add_string b "}\n";
  Buffer.contents b
