module G = Topology.Generators
module RS = Lid.Relay_station

type case = {
  case_name : string;
  case_flavour : Lid.Protocol.flavour;
  composed_free : bool;
  explicit_free : bool option;
  agree : bool;
}

type result = {
  cases : case list;
  identical : bool;
  mesh_n : int;
  mesh_shells : int;
  mesh_classes : int;
  mesh_deadlock_free : bool;
  compose_s : float;
  explicit_mesh_n : int;
  explicit_budget : int;
  explicit_exceeded : bool;
  explicit_s : float;
}

let crosscheck ~closed_budget (name, flavour, net) =
  let composed_free = (Compose.run ~flavour net).Compose.deadlock_free in
  let explicit_free =
    match
      Verify.Closed.check_deadlock_free ~flavour ~max_states:closed_budget net
    with
    | Verify.Reach.Live _ -> Some true
    | Verify.Reach.Wedged _ -> Some false
    | exception Verify.Reach.State_space_exceeded _ -> None
  in
  {
    case_name = name;
    case_flavour = flavour;
    composed_free;
    explicit_free;
    agree =
      (match explicit_free with
      | Some e -> e = composed_free
      | None -> true);
  }

(* Which topologies the flat engine can actually decide was measured,
   not guessed: fig-sized systems and station rings finish in
   milliseconds; a retransmitting chain exceeds 200k states (the go-back
   sequence space) and a 2x2 mesh's 256 environment choices per state
   already push one 200k-budget run past five minutes.  So the
   cross-check list holds the decidable systems — the paper's figures,
   chains, tapped rings, closed toruses — and one retx chain kept
   deliberately to show the budget-exceeded outcome. *)
let workload ~quick =
  let original = Lid.Protocol.Original and optimized = Lid.Protocol.Optimized in
  let base =
    [
      ("fig1", optimized, G.fig1 ());
      ("fig1", original, G.fig1 ());
      ("fig2", optimized, G.fig2 ());
      ("chain4/full", original, G.chain ~n_shells:4 ());
      ("chain4/half", optimized, G.chain ~n_shells:4 ~stations:[ RS.Half ] ());
      ("ring4/half", original, G.ring_tapped ~n_shells:4 ~stations:[ RS.Half ] ());
      ("ring4/half", optimized, G.ring_tapped ~n_shells:4 ~stations:[ RS.Half ] ());
      ("ring4/half+full", original,
       G.ring_tapped ~n_shells:4 ~stations:[ RS.Half; RS.Full ] ());
      ("torus2x2/half", original, G.torus ~stations:[ RS.Half ] ~n:2 ~m:2 ());
      ("torus2x2/full", optimized, G.torus ~n:2 ~m:2 ());
    ]
  in
  if quick then base
  else
    base
    @ [
        ("ring6/half", original, G.ring_tapped ~n_shells:6 ~stations:[ RS.Half ] ());
        ("chain1/retx2", optimized,
         G.chain ~n_shells:1 ~stations:[ RS.Retx { depth = 2 } ] ());
      ]

let run ?(quick = false) () =
  Verify.Contract.memo_clear ();
  let closed_budget = if quick then 50_000 else 200_000 in
  let cases = List.map (crosscheck ~closed_budget) (workload ~quick) in
  let identical = List.for_all (fun c -> c.agree) cases in
  (* scale leg: the NoC-size mesh *)
  let mesh_n = if quick then 16 else 64 in
  let mesh = G.mesh ~n:mesh_n ~m:mesh_n () in
  let t0 = Sys.time () in
  let report = Compose.run mesh in
  let compose_s = Sys.time () -. t0 in
  (* for contrast, flat all-environments reachability.  Not on the big
     mesh — its choice set alone (2^(2*2*mesh_n)) cannot be enumerated —
     but on a 2x2 mesh, where the flat engine runs yet still drowns:
     256 environment choices per state make even a modest state budget
     a multi-second affair before it gives up. *)
  let explicit_mesh_n = 2 in
  let explicit_budget = if quick then 2_000 else 20_000 in
  let t0 = Sys.time () in
  let explicit_exceeded =
    match
      Verify.Closed.check_deadlock_free ~max_states:explicit_budget
        (G.mesh ~n:explicit_mesh_n ~m:explicit_mesh_n ())
    with
    | Verify.Reach.Live _ | Verify.Reach.Wedged _ -> false
    | exception Verify.Reach.State_space_exceeded _ -> true
  in
  let explicit_s = Sys.time () -. t0 in
  {
    cases;
    identical;
    mesh_n;
    mesh_shells = mesh_n * mesh_n;
    mesh_classes = List.length report.Compose.classes;
    mesh_deadlock_free = report.Compose.deadlock_free;
    compose_s;
    explicit_mesh_n;
    explicit_budget;
    explicit_exceeded;
    explicit_s;
  }

let verdict = function
  | Some true -> "live"
  | Some false -> "wedged"
  | None -> "budget-exceeded"

let pp fmt r =
  Format.fprintf fmt
    "E21 compositional vs explicit-state verification (%d cross-checks)@."
    (List.length r.cases);
  List.iter
    (fun c ->
      Format.fprintf fmt "  %-18s %-9s composed %-8s explicit %-15s %s@."
        c.case_name
        (Lid.Protocol.to_string c.case_flavour)
        (if c.composed_free then "free" else "deadlock")
        (verdict c.explicit_free)
        (if c.agree then "agree" else "DIVERGED"))
    r.cases;
  Format.fprintf fmt "  cross-check: %s@."
    (if r.identical then "all decided cases agree" else "DIVERGED");
  Format.fprintf fmt
    "  scale: %dx%d mesh (%d shells): composed verdict %s in %.3f s (%d \
     classes)@."
    r.mesh_n r.mesh_n r.mesh_shells
    (if r.mesh_deadlock_free then "deadlock-free" else "NOT deadlock-free")
    r.compose_s r.mesh_classes;
  Format.fprintf fmt
    "         flat reachability on a %dx%d mesh: %s after %.3f s (the \
     %dx%d mesh's environment choice set alone is 2^%d)@."
    r.explicit_mesh_n r.explicit_mesh_n
    (if r.explicit_exceeded then
       Printf.sprintf "gave up at %d states" r.explicit_budget
     else "decided (unexpectedly)")
    r.explicit_s r.mesh_n r.mesh_n (4 * r.mesh_n)

let to_json r =
  Lidjson.to_string
    (Lidjson.Obj
       [
         ("experiment", Lidjson.String "E21");
         ( "cases",
           Lidjson.List
             (List.map
                (fun c ->
                  Lidjson.Obj
                    [
                      ("name", Lidjson.String c.case_name);
                      ( "flavour",
                        Lidjson.String (Lid.Protocol.to_string c.case_flavour)
                      );
                      ("composed_deadlock_free", Lidjson.Bool c.composed_free);
                      ( "explicit",
                        Lidjson.String (verdict c.explicit_free) );
                      ("agree", Lidjson.Bool c.agree);
                    ])
                r.cases) );
         ("identical", Lidjson.Bool r.identical);
         ("mesh_n", Lidjson.Int r.mesh_n);
         ("mesh_shells", Lidjson.Int r.mesh_shells);
         ("mesh_classes", Lidjson.Int r.mesh_classes);
         ("mesh_deadlock_free", Lidjson.Bool r.mesh_deadlock_free);
         ("compose_s", Lidjson.Float r.compose_s);
         ("explicit_mesh_n", Lidjson.Int r.explicit_mesh_n);
         ("explicit_budget", Lidjson.Int r.explicit_budget);
         ("explicit_exceeded", Lidjson.Bool r.explicit_exceeded);
         ("explicit_s", Lidjson.Float r.explicit_s);
       ])
