(** Whole-network assume-guarantee discharge over the contract graph.

    The compositional counterpart of explicit-state reachability: every
    component {e class} occurring in the network (shell port shapes,
    relay-station kinds, entrance gates) is discharged once against its
    protocol contract ({!Verify.Contract}, memoized process-wide), and the
    network-level verdict is then computed purely over the {e contract
    graph} — the dense-id CSR of {!Skeleton.Packed}, traversed in the
    same label-propagation style as the stop-path prover.  A 64×64 mesh
    costs a handful of class discharges plus a linear graph pass, where
    flat reachability is infeasible.

    Network-level findings:

    - {b LID009} — a component class refutes its handshake or
      stall-response obligation (error; informational when a discharge
      merely ran out of state budget and is carried as an assumption);
    - {b LID010} — contract-graph deadlock: a reachable cycle every
      channel of which is {e weak} (no gate and no station whose class
      proves [stall_implies_token] — so the whole cycle can sustain
      back-pressure while holding no token).  Cycles unreachable from any
      source and not reaching any sink are exempt (no environment can
      drain their initial tokens).  The flavour sensitivity is organic:
      the half station's class is weak under [Original] and strong under
      [Optimized], which is exactly the paper's deadlock/cure story;
    - {b LID011} — assumption mismatch on a channel into a shell: the
      producer-side guarantee arriving at the consumer is weaker than
      what shells assume — no memory element at all on the chain, a
      refuted class whose face shines through pass-through (Mealy) half
      stations without being re-established by a proved Moore element
      (full/retx station or gate), or a {e weak} final element (one that
      can sustain back-pressure while holding no token, the
      Original-flavour half station) facing the shell on a channel some
      source can reach.  The last form is the glue obligation of the
      composition and wedges in the explicit model (a void arriving at
      the weak element deadlocks the pair), so it also flips
      [deadlock_free]; channels unreachable from every source are exempt
      — a closed ring of weak elements provably keeps circulating its
      initial tokens. *)

module Net = Topology.Network

type report = {
  net : Net.t;
  flavour : Lid.Protocol.flavour;
  classes : Verify.Contract.verdict list;
      (** distinct component classes, in discovery order *)
  diagnostics : Diagnostic.t list;  (** sorted with {!Diagnostic.compare} *)
  deadlock_free : bool;
      (** no token-starvation finding: neither a LID010 cycle nor a
          wedging weak-link LID011 *)
}

val run :
  ?flavour:Lid.Protocol.flavour ->
  ?max_states:int ->
  ?station_step:Verify.Props.rs_step ->
  Net.t ->
  report
(** Compile the network ({!Skeleton.Packed.create}) and discharge it
    compositionally.  [max_states] bounds each class discharge;
    [station_step] substitutes the relay-station transition function
    (seeded mutants for the cross-validation suite — it bypasses the
    contract memo). *)

val count : report -> Diagnostic.severity -> int
val max_severity : report -> Diagnostic.severity option

val pp : Format.formatter -> report -> unit
(** Class table, diagnostics, and the composed verdict. *)

val to_json : report -> string
(** The machine-readable report: class verdicts, diagnostics (same shape
    as the lint report's), summary counts, and [deadlock_free]. *)
