(** Gate-level proof that stop signals are registered per channel.

    The paper's central implementation theorem: a shell cannot store an
    incoming stop, so back-pressure traverses it combinationally — and
    therefore every channel between shell-like blocks needs at least one
    memory element (a relay station), or stops chain combinationally
    across the system.

    This pass proves the property {e statically} on the elaborated
    netlist, with no simulation: walking [Hdl.Circuit.comb_order] once,
    it propagates, for every combinational node, the set of {e stop
    origins} (environment stall inputs, and other channels'
    producer-side stop points) on which the node's value depends this
    cycle.  Registers, constants and non-stall inputs contribute the
    empty set — they are this cycle's state, not a combinational path.

    A channel is clean when the stop its producer samples depends on no
    stop origin at all (it is a register output — a relay station
    registered it), or only on the stall input of the channel's own
    directly-attached sink (the environment's stop is allowed to enter
    un-registered at the boundary, as in the paper's figures).  Anything
    else is a combinational stop traversal — diagnostic [LID001]. *)

module Net = Topology.Network

type stop_source =
  | Stall of Net.node_id  (** a sink's [stall_*] environment input *)
  | Edge_stop of Net.edge_id  (** channel [e]'s producer-side stop point *)

type violation = {
  v_edge : Net.edge_id;
  v_sources : stop_source list;
      (** the disallowed stop origins combinationally visible at the
          channel's producer-side stop, in increasing bit order *)
}

type result = {
  proved : bool;  (** no channel sees a disallowed stop origin *)
  violations : violation list;
  edges_checked : int;
      (** producer-side stop wires found in the netlist and analyzed *)
}

val analyze : Net.t -> Hdl.Circuit.t -> result
(** The circuit must be the elaboration of the network
    ({!Topology.Rtl_net.of_network}), whose naming discipline
    ([e<id>_stop], [stall_<sink>]) carries the provenance this analysis
    reads back. *)

val source_name : Net.t -> stop_source -> string
(** Printable origin, e.g. ["stall(out)"] or ["stop(A.0 -> B.0)"]. *)
