(** E21 — compositional verdicts against explicit-state reachability.

    Two legs.  The {e cross-check} leg runs every test topology small
    enough to decide both ways: the composed deadlock verdict
    ({!Compose.run}) against the exhaustive all-environments liveness
    check ({!Verify.Closed.check_deadlock_free}), asserted to agree.
    The {e scale} leg runs the composed discharge on a generated 64x64
    mesh (4096 shells) and, for contrast, lets flat reachability try the
    same network under a generous state budget until it gives up —
    demonstrating the verdict compositionality buys. *)

type case = {
  case_name : string;
  case_flavour : Lid.Protocol.flavour;
  composed_free : bool;  (** {!Compose.run}'s [deadlock_free] *)
  explicit_free : bool option;
      (** [Closed]'s verdict; [None] when the state budget ran out *)
  agree : bool;  (** vacuously true when [explicit_free = None] *)
}

type result = {
  cases : case list;
  identical : bool;  (** every decided case agrees *)
  mesh_n : int;  (** mesh side: the scale leg runs [mesh_n x mesh_n] *)
  mesh_shells : int;
  mesh_classes : int;  (** distinct component classes discharged *)
  mesh_deadlock_free : bool;
  compose_s : float;  (** composed discharge wall time on the mesh *)
  explicit_mesh_n : int;
      (** side of the small mesh the flat engine is given for contrast.
          The big mesh is out of reach {e by construction}: the flat
          engine enumerates all environment choices up front — 2^(2n+2m)
          of them, 2^256 for the 64x64 mesh *)
  explicit_budget : int;  (** flat-reachability state budget *)
  explicit_exceeded : bool;  (** flat reachability gave up at the budget *)
  explicit_s : float;  (** time it spent before giving up *)
}

val run : ?quick:bool -> unit -> result
(** [quick] (default false) shrinks the mesh to 16x16 and trims the
    cross-check workload to CI-smoke size. *)

val pp : Format.formatter -> result -> unit
val to_json : result -> string
