module Net = Topology.Network
module Signal = Hdl.Signal
module Circuit = Hdl.Circuit
module Bitset = Bitvec.Bitset

type stop_source = Stall of Net.node_id | Edge_stop of Net.edge_id

type violation = { v_edge : Net.edge_id; v_sources : stop_source list }

type result = {
  proved : bool;
  violations : violation list;
  edges_checked : int;
}

let source_name net = function
  | Stall id -> Printf.sprintf "stall(%s)" (Net.node net id).name
  | Edge_stop eid ->
      let e = Net.edge net eid in
      Printf.sprintf "stop(%s.%d -> %s.%d)" (Net.node net e.src.node).name
        e.src.port (Net.node net e.dst.node).name e.dst.port

(* "e<digits>_stop" — and only that: the per-station "e3_rs1_stop" wires
   must not match, they are interior points of the same channel. *)
let edge_stop_bit ~n_edges name =
  let n = String.length name in
  if n >= 7 && name.[0] = 'e' && String.sub name (n - 5) 5 = "_stop" then
    match int_of_string_opt (String.sub name 1 (n - 6)) with
    | Some i when i >= 0 && i < n_edges -> Some i
    | _ -> None
  else None

let analyze net circ =
  let n_edges = Net.n_edges net in
  let sinks = Array.of_list (Net.sinks net) in
  (* label universe: one bit per channel stop point, one per sink stall *)
  let n_bits = n_edges + Array.length sinks in
  let stall_bit = Hashtbl.create 8 in
  Array.iteri
    (fun k (n : Net.node) -> Hashtbl.add stall_bit ("stall_" ^ n.name) (n_edges + k))
    sinks;
  let sets : (int, Bitset.t) Hashtbl.t = Hashtbl.create 1024 in
  let observations = Array.make (max 1 n_edges) None in
  (* one forward pass: comb_order lists every combinational node after
     its combinational dependencies, so each union is over final sets *)
  Array.iter
    (fun s ->
      let acc = Bitset.create n_bits in
      List.iter
        (fun d ->
          match d with
          | Signal.Input { name; _ } -> (
              match Hashtbl.find_opt stall_bit name with
              | Some bit -> Bitset.set acc bit
              | None -> ())
          | _ -> (
              match Hashtbl.find_opt sets (Signal.uid d) with
              | Some ds -> Bitset.union_into ~into:acc ds
              | None -> () (* register or constant: state, not a path *)))
        (Signal.deps s);
      (match s with
      | Signal.Wire { name = Some nm; _ } -> (
          match edge_stop_bit ~n_edges nm with
          | Some e ->
              (* what the producer of channel [e] samples is the set
                 before this wire adds its own origin label *)
              observations.(e) <- Some (Bitset.copy acc);
              Bitset.set acc e
          | None -> ())
      | _ -> ());
      Hashtbl.replace sets (Signal.uid s) acc)
    (Circuit.comb_order circ);
  let violations = ref [] in
  let checked = ref 0 in
  for e = n_edges - 1 downto 0 do
    match observations.(e) with
    | None -> ()
    | Some obs ->
        incr checked;
        let allowed = Bitset.create n_bits in
        let dst = (Net.edge net e).dst.node in
        (match (Net.node net dst).kind with
        | Net.Sink _ -> (
            match Hashtbl.find_opt stall_bit ("stall_" ^ (Net.node net dst).name) with
            | Some bit -> Bitset.set allowed bit
            | None -> ())
        | Net.Shell _ | Net.Source _ -> ());
        if not (Bitset.is_subset obs ~of_:allowed) then begin
          let srcs = ref [] in
          Bitset.iter_set obs (fun bit ->
              if not (Bitset.get allowed bit) then
                srcs :=
                  (if bit < n_edges then Edge_stop bit
                   else Stall sinks.(bit - n_edges).id)
                  :: !srcs);
          violations := { v_edge = e; v_sources = List.rev !srcs } :: !violations
        end
  done;
  { proved = !violations = []; violations = !violations; edges_checked = !checked }
