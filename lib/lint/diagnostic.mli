(** Structured lint diagnostics.

    Every finding of the static analyzer is a value of {!t}: a stable
    code, a severity, a location inside the network (or the elaborated
    netlist), a human-readable message, machine-readable parameters, and
    optional fix-its.  Codes are stable across releases — scripts and CI
    gates may match on them — so a code is never renumbered or reused;
    retired codes would be left as holes. *)

module Net = Topology.Network

type severity = Info | Warning | Error

type code =
  | LID001  (** combinational stop path: a stop signal reaches a channel's
                producer without crossing a memory element *)
  | LID002  (** missing memory element: a station-less channel into a
                shell (the paper's minimum-memory theorem is violated) *)
  | LID003  (** relay imbalance / limiting cycle: the structural
                throughput bound is below 1 *)
  | LID004  (** zero-throughput cycle: a token-free cycle freezes part of
                the system *)
  | LID005  (** dead environment: a never-active source (its channels are
                never driven) or a never-accepting sink (its channels
                never drain) *)
  | LID006  (** environment duty cap: an environment pattern caps
                throughput below the structural bound *)
  | LID007  (** potential deadlock: half relay stations inside a loop *)
  | LID008  (** retx buffer undersized: a retransmitting station's replay
                buffer is shallower than the channel's worst-case round
                trip, so the sender can stall fault-free waiting for acks *)
  | LID009  (** contract violation: a component class refutes its protocol
                contract (handshake or stall-response obligation) in the
                assume-guarantee discharge *)
  | LID010  (** contract-graph deadlock: a token-starved cycle every
                channel of which can sustain back-pressure while holding
                no token — the compositional generalization of LID007 *)
  | LID011  (** assumption mismatch: a channel whose producer-side
                guarantee is weaker than its consumer's interface
                assumption *)

type location =
  | L_network  (** the system as a whole *)
  | L_node of Net.node_id
  | L_edge of Net.edge_id
  | L_loop of Net.node_id list  (** a cycle of the channel graph *)
  | L_signal of string  (** a named signal of the elaborated netlist *)

(** Machine-readable payload, mirroring the paper's closed forms. *)
type params =
  | P_none
  | P_reconvergence of { m : int; i : int; tokens : int; latency : int }
      (** feed-forward imbalance: throughput [(m-i)/m], with the critical
          virtual loop's exact token/latency counts *)
  | P_loop of { s : int; r : int; tokens : int; latency : int }
      (** feedback loop of [s] shells and [r] stations: throughput
          [s/(s+r)] *)
  | P_duty of { active : int; period : int }
      (** effective accept/emit duty of an environment node *)
  | P_stop_sources of string list
      (** the stop origins combinationally visible at a channel *)
  | P_retx of { depth : int; rtt : int }
      (** replay-buffer depth vs the worst-case flit round trip *)
  | P_contract of { cls : string; obligation : string; outcome : string }
      (** which class key refuted which contract obligation, and the
          discharge outcome text *)
  | P_cycle of { length : int; classes : string list }
      (** a token-starved contract-graph cycle: its length and the weak
          component classes fueling it *)
  | P_assume of { producer : string; consumer : string }
      (** the producer-side guarantee vs the consumer-side assumption on
          a mismatched channel *)

type fixit = { fix_edge : Net.edge_id; fix_spare : int }
(** "append [fix_spare] full relay stations to channel [fix_edge]". *)

type t = {
  code : code;
  severity : severity;
  loc : location;
  message : string;
  params : params;
  fixits : fixit list;
}

val all_codes : code list

val code_id : code -> string
(** ["LID001"] ... — the stable identifier. *)

val code_slug : code -> string
(** Short kebab-case name, e.g. ["combinational-stop-path"]. *)

val code_doc : code -> string
(** One-line meaning (the README table is generated from these). *)

val severity_to_string : severity -> string
val severity_rank : severity -> int
(** [Info] 0, [Warning] 1, [Error] 2. *)

val compare : t -> t -> int
(** Sort key for reports: descending severity, then code, then location. *)

val fixit_line : Net.t -> fixit -> string
(** The full replacement channel declaration a fix-it proposes, rendered
    with {!Topology.Spec.channel_line} — pasteable into a [.lid] spec
    verbatim. *)

val pp_location : Net.t -> Format.formatter -> location -> unit
val pp : Net.t -> Format.formatter -> t -> unit
(** One diagnostic as a human-readable line (plus fix-it lines). *)

val json_to_buffer : Net.t -> Buffer.t -> t -> unit
(** Append the diagnostic as one JSON object. *)
