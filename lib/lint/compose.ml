module Net = Topology.Network
module D = Diagnostic
module C = Verify.Contract
module Csr = Skeleton.Packed.Csr
module RS = Lid.Relay_station

type report = {
  net : Net.t;
  flavour : Lid.Protocol.flavour;
  classes : C.verdict list;
  diagnostics : D.t list;
  deadlock_free : bool;
}

(* ------------------------------------------------------------------ *)
(* Contract classes of one channel: entrance gate first (if the profile
   compiled to one), then the station chain producer-to-consumer.  The
   first retx station of a profiled chain consumes the channel's delay
   table — the same elaboration rule as both engines — and the table is
   part of the class (it fixes the retransmission timeout).             *)

let chain_classes pk net e =
  let gate =
    match Csr.gate_table pk e with
    | Some table -> [ C.Gate { table } ]
    | None -> []
  in
  let table = Net.delay_table net e in
  let first_retx = ref true in
  let stations =
    List.map
      (fun kind ->
        match kind with
        | RS.Retx _ ->
            let t =
              if !first_retx then Option.value ~default:[| 0 |] table
              else [| 0 |]
            in
            first_retx := false;
            C.Station { kind; table = t }
        | _ -> C.Station { kind; table = [||] })
      (Csr.stations pk e)
  in
  gate @ stations

(* ------------------------------------------------------------------ *)
(* Iterative Tarjan over the weak-channel subgraph of the shells —
   explicit frames, so NoC-size meshes don't touch the OCaml stack.     *)

let weak_sccs ~n ~participates ~succ =
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let frames = Stack.create () in
  let push v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    Stack.push (v, ref (succ v)) frames
  in
  for root = 0 to n - 1 do
    if participates root && index.(root) = -1 then begin
      push root;
      while not (Stack.is_empty frames) do
        let v, rest = Stack.top frames in
        match !rest with
        | w :: tl ->
            rest := tl;
            if index.(w) = -1 then push w
            else if on_stack.(w) then low.(v) <- min low.(v) index.(w)
        | [] ->
            ignore (Stack.pop frames);
            (match Stack.top_opt frames with
            | Some (p, _) -> low.(p) <- min low.(p) low.(v)
            | None -> ());
            if low.(v) = index.(v) then begin
              let rec pop acc =
                match !stack with
                | w :: tl ->
                    stack := tl;
                    on_stack.(w) <- false;
                    if w = v then w :: acc else pop (w :: acc)
                | [] -> assert false
              in
              out := pop [] :: !out
            end
      done
    end
  done;
  !out

(* A concrete cycle through [r] inside its SCC, following only weak
   edges whose endpoints stay in the SCC: BFS with parent tracking until
   an edge closes back on [r].  Returns the node list of the loop.      *)
let cycle_through ~succ ~in_scc r =
  let parent = Hashtbl.create 16 in
  let q = Queue.create () in
  Queue.push r q;
  Hashtbl.replace parent r r;
  let rec path v acc = if v = r then r :: acc else path (Hashtbl.find parent v) (v :: acc) in
  let result = ref None in
  while !result = None && not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun w ->
        if !result = None && in_scc w then
          if w = r then result := Some (path v [])
          else if not (Hashtbl.mem parent w) then begin
            Hashtbl.replace parent w v;
            Queue.push w q
          end)
      (succ v)
  done;
  match !result with Some c -> c | None -> [ r ]

(* ------------------------------------------------------------------ *)

let run ?(flavour = Lid.Protocol.Optimized) ?max_states ?station_step net =
  let pk = Skeleton.Packed.create ~flavour net in
  let n = Csr.n_nodes pk and m = Csr.n_edges pk in
  (* --- class discovery and once-per-class discharge ---------------- *)
  let order = ref [] in
  let verdicts : (string, C.verdict) Hashtbl.t = Hashtbl.create 16 in
  let rep : (string, D.location) Hashtbl.t = Hashtbl.create 16 in
  let discharge loc cls =
    let key = C.class_key ~flavour cls in
    if not (Hashtbl.mem rep key) then Hashtbl.replace rep key loc;
    match Hashtbl.find_opt verdicts key with
    | Some v -> v
    | None ->
        let step =
          match cls with C.Station _ -> station_step | _ -> None
        in
        let v = C.discharge ~flavour ?max_states ?step cls in
        Hashtbl.replace verdicts key v;
        order := v :: !order;
        v
  in
  let node_verdict = Array.make n None in
  for v = 0 to n - 1 do
    if Csr.is_shell pk v then
      node_verdict.(v) <-
        Some
          (discharge (D.L_node v)
             (C.Shell
                {
                  n_inputs = Csr.in_degree pk v;
                  n_outputs = Csr.out_degree pk v;
                }))
  done;
  let edge_chain =
    Array.init m (fun e ->
        List.map
          (fun cls -> (cls, discharge (D.L_edge e) cls))
          (chain_classes pk net e))
  in
  let classes = List.rev !order in
  (* --- LID009: refuted classes (error) / assumed obligations (info) - *)
  let lid009 =
    List.concat_map
      (fun (v : C.verdict) ->
        let key = C.class_key ~flavour:v.flavour v.cls in
        let loc = Option.value ~default:D.L_network (Hashtbl.find_opt rep key) in
        let finding obligation outcome =
          match outcome with
          | C.Refuted _ ->
              [
                {
                  D.code = D.LID009;
                  severity = D.Error;
                  loc;
                  message =
                    Printf.sprintf "component class %s refutes its %s obligation: %s"
                      (C.cls_to_string v.cls) obligation
                      (C.outcome_to_string outcome);
                  params =
                    D.P_contract
                      {
                        cls = key;
                        obligation;
                        outcome = C.outcome_to_string outcome;
                      };
                  fixits = [];
                };
              ]
          | C.Assumed _ ->
              [
                {
                  D.code = D.LID009;
                  severity = D.Info;
                  loc;
                  message =
                    Printf.sprintf
                      "component class %s: %s obligation carried as an \
                       assumption (%s)"
                      (C.cls_to_string v.cls) obligation
                      (C.outcome_to_string outcome);
                  params =
                    D.P_contract
                      {
                        cls = key;
                        obligation;
                        outcome = C.outcome_to_string outcome;
                      };
                  fixits = [];
                };
              ]
          | C.Proved _ -> []
        in
        finding "handshake" v.handshake @ finding "responsive" v.responsive)
      classes
  in
  (* --- channel strength -------------------------------------------- *)
  let edge_weak =
    Array.init m (fun e ->
        not
          (List.exists
             (fun ((_ : C.cls), v) -> v.C.stall_implies_token)
             edge_chain.(e)))
  in
  (* --- environment reachability over the full graph ---------------- *)
  let out_succ v =
    List.init (Csr.out_degree pk v) (fun k ->
        Csr.edge_dst pk (Csr.out_edge pk v k))
  in
  let rev_adj = Array.make n [] in
  for e = 0 to m - 1 do
    let d = Csr.edge_dst pk e in
    rev_adj.(d) <- Csr.edge_src pk e :: rev_adj.(d)
  done;
  let bfs seeds succ =
    let seen = Array.make n false in
    let q = Queue.create () in
    List.iter
      (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          Queue.push v q
        end)
      seeds;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      List.iter
        (fun w ->
          if not seen.(w) then begin
            seen.(w) <- true;
            Queue.push w q
          end)
        (succ v)
    done;
    seen
  in
  let all_of pred =
    List.filter pred (List.init n (fun v -> v))
  in
  let from_sources = bfs (all_of (Csr.is_source pk)) out_succ in
  let to_sinks = bfs (all_of (Csr.is_sink pk)) (fun v -> rev_adj.(v)) in
  (* --- LID010: reachable token-starved cycles ---------------------- *)
  let weak_succ v =
    List.filter_map
      (fun k ->
        let e = Csr.out_edge pk v k in
        let d = Csr.edge_dst pk e in
        if edge_weak.(e) && Csr.is_shell pk d then Some d else None)
      (List.init (Csr.out_degree pk v) (fun k -> k))
  in
  let sccs =
    weak_sccs ~n ~participates:(fun v -> Csr.is_shell pk v) ~succ:weak_succ
  in
  let lid010 =
    List.filter_map
      (fun scc ->
        let in_scc =
          let h = Hashtbl.create (List.length scc) in
          List.iter (fun v -> Hashtbl.replace h v ()) scc;
          fun v -> Hashtbl.mem h v
        in
        let cyclic =
          match scc with
          | [ v ] -> List.exists (fun w -> w = v) (weak_succ v)
          | _ :: _ :: _ -> true
          | [] -> false
        in
        let touchable =
          List.exists (fun v -> from_sources.(v) || to_sinks.(v)) scc
        in
        if not (cyclic && touchable) then None
        else begin
          let r = List.fold_left min (List.hd scc) scc in
          let cycle = cycle_through ~succ:weak_succ ~in_scc r in
          (* the weak edges along the cycle, for the fix-it and params *)
          let edge_between a b =
            let best = ref None in
            for k = 0 to Csr.out_degree pk a - 1 do
              let e = Csr.out_edge pk a k in
              if edge_weak.(e) && Csr.edge_dst pk e = b then
                match !best with
                | Some e' when e' <= e -> ()
                | _ -> best := Some e
            done;
            !best
          in
          let cycle_edges =
            let rec pairs = function
              | a :: (b :: _ as tl) -> edge_between a b :: pairs tl
              | [ last ] -> [ edge_between last (List.hd cycle) ]
              | [] -> []
            in
            List.filter_map (fun e -> e) (pairs cycle)
          in
          let classes_of e =
            match edge_chain.(e) with
            | [] -> [ "direct" ]
            | chain -> List.map (fun (cls, _) -> C.cls_to_string cls) chain
          in
          let weak_classes =
            List.sort_uniq Stdlib.compare
              (List.concat_map classes_of cycle_edges)
          in
          let fix_edge = List.fold_left min (List.hd cycle_edges) cycle_edges in
          Some
            {
              D.code = D.LID010;
              severity = D.Error;
              loc = D.L_loop cycle;
              message =
                Printf.sprintf
                  "token-starved cycle: all %d channels can sustain \
                   back-pressure while holding no token (%s); one full \
                   station breaks it"
                  (List.length cycle)
                  (String.concat ", " weak_classes);
              params =
                D.P_cycle
                  { length = List.length cycle; classes = weak_classes };
              fixits = [ { D.fix_edge; fix_spare = 1 } ];
            }
        end)
      sccs
  in
  (* --- LID011: producer guarantee vs consumer assumption ------------ *)
  let lid011_tagged =
    List.filter_map
      (fun e ->
        let dst = Csr.edge_dst pk e in
        if not (Csr.is_shell pk dst) then None
        else begin
          let src = Csr.edge_src pk e in
          let tainted0, desc0 =
            if Csr.is_shell pk src then
              match node_verdict.(src) with
              | Some v when not (C.verdict_ok v) ->
                  (true, "refuted class " ^ C.cls_to_string v.C.cls)
              | _ -> (false, "")
            else (false, "" (* sources are environment: conformant *))
          in
          let tainted, has_memory, desc =
            List.fold_left
              (fun (t, _mem, desc) (cls, v) ->
                if not (C.verdict_ok v) then
                  (true, true, "refuted class " ^ C.cls_to_string cls)
                else
                  match cls with
                  | C.Station { kind = RS.Half; _ } ->
                      (* Mealy pass-through: the upstream face shines
                         through when the hold register is empty *)
                      (t, true, desc)
                  | C.Station _ | C.Gate _ ->
                      (* proved Moore face: guarantee re-established *)
                      (false, true, desc)
                  | C.Shell _ -> (t, true, desc))
              (tainted0, false, desc0)
              edge_chain.(e)
          in
          let has_memory = has_memory || edge_chain.(e) <> [] in
          (* The glue obligation the cross-validation suite caught: the
             shell's interface assumption is not just "a memory element",
             it is a memory element whose stall implies a held token.  A
             weak final element (the Original-flavour half station) facing
             a shell wedges the pair as soon as the environment lets a
             void through — measured on the explicit engine: the chain
             src -[half]-> shell deadlocks under Original in three steps,
             while half stations facing sinks, or followed by a full
             station, stay live.  Channels no source can reach never see
             a void, so closed rings/tori of weak elements are exempt
             (they provably keep circulating their initial tokens). *)
          let weak_final =
            if not from_sources.(src) then None
            else
              match List.rev edge_chain.(e) with
              | (cls, v) :: _ when not v.C.stall_implies_token -> Some cls
              | _ -> None
          in
          let mismatch =
            if tainted then
              Some
                (desc, "registered protocol face (>= 1 memory element)",
                 weak_final <> None)
            else if not has_memory then
              Some
                ( "combinational (no memory element on the channel)",
                  "registered protocol face (>= 1 memory element)",
                  false )
            else
              match weak_final with
              | Some cls ->
                  Some
                    ( Printf.sprintf
                        "weak (class %s facing the shell can sustain \
                         back-pressure while holding no token)"
                        (C.cls_to_string cls),
                      "a strong producer face (a stalled producer holds a \
                       token)",
                      true )
              | None -> None
          in
          match mismatch with
          | None -> None
          | Some (producer, consumer, wedging) ->
              Some
                ( {
                    D.code = D.LID011;
                    severity = D.Error;
                    loc = D.L_edge e;
                    message =
                      Printf.sprintf
                        "producer guarantee is %s, weaker than the consumer \
                         shell's assumption of %s"
                        producer consumer;
                    params = D.P_assume { producer; consumer };
                    fixits = [ { D.fix_edge = e; fix_spare = 1 } ];
                  },
                  wedging )
        end)
      (List.init m (fun e -> e))
  in
  let lid011 = List.map fst lid011_tagged in
  let wedging_link = List.exists snd lid011_tagged in
  let diagnostics =
    List.sort D.compare (lid009 @ lid010 @ lid011)
  in
  {
    net;
    flavour;
    classes;
    diagnostics;
    deadlock_free = lid010 = [] && not wedging_link;
  }

(* --- report accessors ----------------------------------------------- *)

let count r sev =
  List.length (List.filter (fun (d : D.t) -> d.severity = sev) r.diagnostics)

let max_severity r =
  List.fold_left
    (fun acc (d : D.t) ->
      match acc with
      | None -> Some d.severity
      | Some s ->
          if D.severity_rank d.severity > D.severity_rank s then
            Some d.severity
          else acc)
    None r.diagnostics

(* --- rendering ------------------------------------------------------ *)

let pp fmt r =
  Format.fprintf fmt "@[<v>";
  Format.fprintf fmt "compose (%s): %d component class%s@,"
    (Lid.Protocol.to_string r.flavour)
    (List.length r.classes)
    (if List.length r.classes = 1 then "" else "es");
  List.iter
    (fun (v : C.verdict) ->
      Format.fprintf fmt "  %-28s handshake %s; responsive %s; %s%s@,"
        (C.cls_to_string v.cls)
        (C.outcome_to_string v.handshake)
        (C.outcome_to_string v.responsive)
        (if v.stall_implies_token then "strong" else "weak")
        (match v.symbolic with
        | None -> ""
        | Some (_, true) -> "; rtl-confirmed"
        | Some (_, false) -> "; rtl-weak"))
    r.classes;
  List.iter (fun d -> Format.fprintf fmt "%a@," (D.pp r.net) d) r.diagnostics;
  Format.fprintf fmt "verdict: %s@]"
    (if r.deadlock_free then "deadlock-free (composed)"
     else "NOT deadlock-free (composed)")

let to_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"flavour\": %s,\n"
    (Lidjson.quote (Lid.Protocol.to_string r.flavour));
  Buffer.add_string b "  \"classes\": [";
  List.iteri
    (fun i (v : C.verdict) ->
      Buffer.add_string b (if i = 0 then "\n    " else ",\n    ");
      Printf.bprintf b
        "{\"key\": %s, \"handshake\": %s, \"responsive\": %s, \
         \"stall_implies_token\": %b, \"symbolic\": %s}"
        (Lidjson.quote (C.class_key ~flavour:v.flavour v.cls))
        (Lidjson.quote (C.outcome_to_string v.handshake))
        (Lidjson.quote (C.outcome_to_string v.responsive))
        v.stall_implies_token
        (match v.symbolic with
        | None -> "null"
        | Some (prop, holds) ->
            Printf.sprintf "{\"property\": %s, \"holds\": %b}"
              (Lidjson.quote prop) holds))
    r.classes;
  Buffer.add_string b (if r.classes = [] then "],\n" else "\n  ],\n");
  Buffer.add_string b "  \"diagnostics\": [";
  List.iteri
    (fun i d ->
      Buffer.add_string b (if i = 0 then "\n    " else ",\n    ");
      D.json_to_buffer r.net b d)
    r.diagnostics;
  Buffer.add_string b (if r.diagnostics = [] then "],\n" else "\n  ],\n");
  Printf.bprintf b
    "  \"summary\": {\"errors\": %d, \"warnings\": %d, \"infos\": %d},\n"
    (count r D.Error) (count r D.Warning) (count r D.Info);
  Printf.bprintf b "  \"deadlock_free\": %b\n" r.deadlock_free;
  Buffer.add_string b "}\n";
  Buffer.contents b
