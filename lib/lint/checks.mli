(** The lint driver: every static check over one network.

    Two layers are analyzed.  At topology level, the elastic marked-graph
    model gives the structural throughput bound as an exact integer ratio
    and localizes the critical cycle ([LID003]/[LID004], with
    {!Topology.Equalize} fix-its on feed-forward networks); environment
    patterns give an exact duty cap ([LID005]/[LID006]); the deadlock
    rules give [LID007]; and the builder's minimum-memory theorem is
    re-checked channel by channel ([LID002]).  At gate level, the network
    is elaborated to RTL and {!Stop_path} proves — by path analysis over
    [comb_order], not by simulation — that no channel samples a
    combinationally-traversed stop ([LID001]).

    The predicted sustained throughput is the minimum of the structural
    and environment ratios, kept exact: tests and E16 cross-validate it
    against the packed engine's measured steady state by
    cross-multiplication, so the static and dynamic views can never
    silently disagree. *)

module Net = Topology.Network

type ratio = int * int
(** Exact non-negative rational [(num, den)], [den > 0], not necessarily
    reduced. *)

type report = {
  net : Net.t;
  diagnostics : Diagnostic.t list;  (** sorted: errors first *)
  structural : ratio option;
      (** min-cycle ratio of the elastic model, capped at [(1, 1)];
          [None] when a zero-latency cycle makes the model meaningless *)
  env_cap : ratio;  (** minimum environment emit/accept duty, [(1, 1)] free *)
  predicted : ratio option;
      (** predicted sustained system throughput:
          [min (structural, env_cap)].  Exact for free environments (the
          elastic model's regime); with patterned environments it is an
          upper bound that phase interference can undercut. *)
  gate_ran : bool;
  gate_proved : bool;
      (** the stop-path pass ran and proved every channel clean *)
  gate_skip_reason : string option;
      (** why the gate-level pass did not run (e.g. a non-[Always]
          source has no RTL elaboration) *)
}

val run :
  ?flavour:Lid.Protocol.flavour ->
  ?data_width:int ->
  ?gate:bool ->
  Net.t ->
  report
(** Run every check.  [gate] (default true) controls the RTL
    elaboration + stop-path pass; topology-level checks always run.
    Accepts networks built with [~allow_direct:true] — that is the
    point: the linter reports what the builder would have refused. *)

val check_elastic :
  ?net:Net.t -> Topology.Elastic.t -> cyclic:bool -> Diagnostic.t list * ratio option
(** The structural leg alone: [LID001] (zero-latency cycle), [LID004]
    (token-free cycle) or [LID003] (bound below 1) from an elastic
    graph, plus the resulting bound ([None] on zero-latency cycles).
    [net] only refines diagnostic locations; passing none falls back to
    network-level locations.  Exposed so tests can drive hand-built
    elastic graphs through the same classification. *)

(** {1 Ratio helpers} *)

val ratio_eq : ratio -> ratio -> bool
(** Cross-multiplied equality — no reduction, no floats. *)

val ratio_value : ratio -> float

(** {1 Report accessors} *)

val max_severity : report -> Diagnostic.severity option
val count : report -> Diagnostic.severity -> int
val predicted_float : report -> float option

val pp : Format.formatter -> report -> unit
(** The human-readable report. *)

val to_json : report -> string
(** The machine-readable report: diagnostics, severity totals, predicted
    throughput, stop-path status. *)
